"""Span tracing: nested begin/end records with JSONL and Chrome-trace export.

A :class:`Tracer` collects :class:`SpanRecord` entries — one per completed
span, with start offset, duration and nesting depth — from the
context-manager :meth:`Tracer.span` API::

    with tracer.span("vfga.assign_batch", algorithm="LACB-Opt"):
        with tracer.span("matching.solve"):
            ...

Records export two ways:

- :meth:`Tracer.export_jsonl` — one JSON object per line, greppable and
  streaming-friendly;
- :meth:`Tracer.chrome_trace` — the Chrome ``trace_event`` format
  (``"X"`` complete events with microsecond ``ts``/``dur``), which loads
  directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Spans merged from worker processes keep their own ``pid`` lane.

Timestamps are seconds since the tracer's epoch (its construction time),
measured on a monotonic clock; cross-process records are therefore only
comparable within one ``pid`` lane, which is exactly how the Chrome trace
renders them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from time import process_time
from typing import Callable, Iterable, Mapping


@dataclass(slots=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: span name (dotted phase path, e.g. ``"matching.solve"``).
        start: seconds since the tracer epoch at span begin.
        duration: span length in seconds.
        depth: nesting depth at begin (0 = top level).
        pid: process lane (0 = the tracer's own process; worker payloads
            merged by :meth:`Tracer.extend` get their own lane).
        day: the engine day the span executed under (``-1`` outside any
            day; stamped from :attr:`Tracer.day`, which the day loop
            maintains — the substrate of per-day profiling).
        cpu: CPU seconds consumed inside the span (``process_time``
            delta); ``-1.0`` when unmeasured (synthesized spans).
        attrs: free-form string attributes (algorithm, day, ...).
    """

    name: str
    start: float
    duration: float
    depth: int = 0
    pid: int = 0
    day: int = -1
    cpu: float = -1.0
    attrs: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "pid": self.pid,
            "day": self.day,
            "cpu": self.cpu,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> SpanRecord:
        return cls(
            name=str(payload["name"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            depth=int(payload.get("depth", 0)),
            pid=int(payload.get("pid", 0)),
            day=int(payload.get("day", -1)),
            cpu=float(payload.get("cpu", -1.0)),
            attrs=dict(payload.get("attrs", {})),
        )


class _Span:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_cpu_start")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, str]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> _Span:
        tracer = self._tracer
        tracer._depth += 1
        self._cpu_start = process_time()
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer._clock()
        cpu = process_time() - self._cpu_start
        tracer._depth -= 1
        tracer._finish(
            self.name, self._start, end - self._start, tracer._depth, self.attrs, cpu=cpu
        )


class Tracer:
    """Collects nested span records on a monotonic clock.

    Args:
        clock: monotonic time source (injectable for deterministic tests).

    The tracer is single-threaded by design — the day loop and every
    matcher run on one thread per process, and worker processes each own a
    fresh tracer whose records are shipped back and merged.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.epoch = clock()
        #: Wall-clock time at epoch, letting exports anchor to real time.
        self.epoch_walltime = time.time()
        self.records: list[SpanRecord] = []
        self._depth = 0
        #: The engine day currently executing (``-1`` outside any day).
        #: Maintained by the day loop; stamped onto every finished span so
        #: the profiler can attribute interior phases to days without
        #: per-call-site plumbing.
        self.day = -1
        #: Called with each finished record (the telemetry layer uses this
        #: to feed span durations into the metrics registry).
        self.on_finish: Callable[[SpanRecord], None] | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: str) -> _Span:
        """Open a nested span; closes (and records) on context exit."""
        return _Span(self, name, attrs)

    def record_span(
        self, name: str, duration: float, cpu: float = -1.0, **attrs: str
    ) -> SpanRecord:
        """Record an already-measured span ending now.

        Lifecycle hooks receive engine-measured ``matcher_seconds`` *after*
        the timed call returned; this synthesizes the corresponding span
        as ``[now - duration, now]`` without re-timing anything.  Pass
        ``cpu`` when the caller measured CPU seconds alongside wall time
        (the engine does for matcher phases).
        """
        end = self._clock()
        return self._finish(name, end - duration, duration, self._depth, dict(attrs), cpu=cpu)

    def _finish(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        attrs: dict[str, str],
        cpu: float = -1.0,
    ) -> SpanRecord:
        # Positional construction: this runs once per span on hot paths.
        record = SpanRecord(name, start - self.epoch, duration, depth, 0, self.day, cpu, attrs)
        self.records.append(record)
        if self.on_finish is not None:
            self.on_finish(record)
        return record

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return self._depth

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def to_payload(self) -> list[dict]:
        """Plain-data dump of all records (for worker → parent shipping)."""
        return [record.to_dict() for record in self.records]

    def extend(self, payload: Iterable[Mapping], pid: int) -> None:
        """Adopt records shipped from another process under lane ``pid``."""
        for entry in payload:
            record = SpanRecord.from_dict(entry)
            record.pid = pid
            self.records.append(record)

    @property
    def next_pid(self) -> int:
        """The next unused process lane (0 is this process)."""
        return max((record.pid for record in self.records), default=0) + 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path) -> None:
        """Write one JSON object per record (sorted by lane, then start).

        Written atomically: readers either see the previous export or the
        complete new one, never a torn span stream.
        """
        from repro.state.io import atomic_open

        with atomic_open(path, "w") as handle:
            for record in sorted(self.records, key=lambda r: (r.pid, r.start)):
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def chrome_trace(self) -> dict:
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Every span becomes one complete (``"ph": "X"``) event with
        microsecond ``ts``/``dur``; nesting is reconstructed by the viewer
        from temporal containment on each ``(pid, tid)`` track.
        """
        events = []
        for record in sorted(self.records, key=lambda r: (r.pid, r.start)):
            events.append(
                {
                    "name": record.name,
                    "cat": record.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": round(record.start * 1e6, 3),
                    "dur": round(record.duration * 1e6, 3),
                    "pid": record.pid,
                    "tid": 0,
                    "args": dict(record.attrs),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"epoch_walltime": self.epoch_walltime},
        }

    def export_chrome_trace(self, path) -> None:
        """Write :meth:`chrome_trace` as JSON (atomically)."""
        from repro.state.io import atomic_open

        with atomic_open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
