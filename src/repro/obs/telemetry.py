"""The process-wide telemetry switchboard.

Telemetry is **off by default**: every instrumentation point in the hot
paths goes through the module-level helpers here (:func:`span`,
:func:`add`, :func:`observe`, :func:`set_gauge`), whose disabled fast path
is a single global read — measured end-to-end overhead with telemetry off
is noise, and with telemetry on stays under the 5% budget enforced by
``benchmarks/test_obs_overhead.py``.

One :class:`Telemetry` object bundles a :class:`~repro.obs.metrics.MetricsRegistry`
with a :class:`~repro.obs.tracing.Tracer` and a ``run_label`` (the current
matcher's display name, maintained by
:class:`~repro.obs.hook.TelemetryHook`) that is stamped onto every span
and metric as an ``algorithm`` label.  Spans double-book: each finished
span also feeds a ``span.<name>`` timer in the registry, so per-phase time
totals survive the cross-process registry merge even though raw span
timestamps do not align across processes.

Activate with :func:`enable` / :func:`disable`, or scoped with::

    with repro.obs.telemetry.use(Telemetry()) as tel:
        run_algorithm(platform, matcher)
    tel.export("out/")
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from typing import Callable, Iterable, Mapping

from repro.obs.metrics import (
    COUNT_BOUNDARIES,
    DURATION_BOUNDARIES,
    MetricsRegistry,
)
from repro.obs.tracing import SpanRecord, Tracer, _Span

#: Exported file names inside a telemetry directory.
METRICS_JSON = "metrics.json"
METRICS_PROM = "metrics.prom"
SPANS_JSONL = "spans.jsonl"
TRACE_JSON = "trace.json"
MANIFEST_JSON = "manifest.json"


class _NullSpan:
    """No-op context manager returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """One process's metrics registry + span tracer + run labeling."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock)
        self.tracer.on_finish = self._book_span
        self.run_label: str | None = None
        #: Live streaming: a :class:`~repro.obs.stream.TelemetryStreamWriter`
        #: the TelemetryHook flushes to at day boundaries (None = off), and
        #: the directory ``run_many`` derives per-spec worker segments from.
        self.stream = None
        self.stream_dir: str | None = None
        #: Decision provenance (:mod:`repro.obs.audit`): ``audit`` holds the
        #: :class:`~repro.obs.audit.AuditConfig` when auditing is requested
        #: (None = off), ``audit_dir`` the segment directory, and
        #: ``audit_segment`` this telemetry's segment stem.  The hook
        #: installs ``audit_session`` (the live per-run collector) and
        #: ``audit_writer`` lazily at run start.
        self.audit = None
        self.audit_dir: str | None = None
        self.audit_segment: str = "main"
        self.audit_session = None
        self.audit_writer = None
        # Hot-path caches, invalidated on every run-label change: resolved
        # metric instances (skipping per-call label canonicalization) and
        # one shared attrs dict for spans without explicit attributes
        # (treated as frozen — never mutated after creation).
        self._span_timers: dict[str, object] = {}
        self._metric_cache: dict[tuple[str, str], object] = {}
        self._label_attrs: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Run labeling
    # ------------------------------------------------------------------
    def set_run_label(self, label: str | None) -> None:
        """Set the algorithm label stamped onto spans and metrics."""
        self.run_label = label
        self._span_timers.clear()
        self._metric_cache.clear()
        self._label_attrs = {"algorithm": label} if label else {}

    def labels(self) -> dict[str, str]:
        """The implicit labels of the current run (empty outside a run)."""
        return {"algorithm": self.run_label} if self.run_label else {}

    # ------------------------------------------------------------------
    # Span + metric entry points
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: str):
        """A live span; also feeds the ``span.<name>`` timer on exit."""
        if not attrs:
            # The common case shares one frozen label dict across spans.
            return _Span(self.tracer, name, self._label_attrs)
        if self.run_label and "algorithm" not in attrs:
            attrs["algorithm"] = self.run_label
        return _Span(self.tracer, name, attrs)

    def record_span(
        self, name: str, duration: float, cpu: float = -1.0, **attrs: str
    ) -> None:
        """Book an externally measured duration as a span ending now."""
        if self.run_label and "algorithm" not in attrs:
            attrs["algorithm"] = self.run_label
        self.tracer.record_span(name, duration, cpu=cpu, **attrs)

    def _book_span(self, record: SpanRecord) -> None:
        timer = self._span_timers.get(record.name)
        if timer is None:
            timer = self.registry.timer(f"span.{record.name}", **self.labels())
            self._span_timers[record.name] = timer
        timer.observe(record.duration)

    def add(self, name: str, amount: float = 1.0, **labels) -> None:
        """Increment a labeled counter (run label applied automatically)."""
        if labels:
            self.registry.counter(name, **{**self.labels(), **labels}).inc(amount)
            return
        counter = self._metric_cache.get(("counter", name))
        if counter is None:
            counter = self.registry.counter(name, **self.labels())
            self._metric_cache[("counter", name)] = counter
        counter.inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a labeled gauge (run label applied automatically)."""
        if labels:
            self.registry.gauge(name, **{**self.labels(), **labels}).set(value)
            return
        gauge = self._metric_cache.get(("gauge", name))
        if gauge is None:
            gauge = self.registry.gauge(name, **self.labels())
            self._metric_cache[("gauge", name)] = gauge
        gauge.set(value)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Iterable[float] = DURATION_BOUNDARIES,
        **labels,
    ) -> None:
        """Observe into a labeled histogram (run label applied automatically).

        Boundaries are fixed at a histogram's first registration; the cached
        fast path assumes every call site of one name agrees on them (the
        registry raises on the first conflicting registration).
        """
        if labels:
            self.registry.histogram(
                name, boundaries=boundaries, **{**self.labels(), **labels}
            ).observe(value)
            return
        histogram = self._metric_cache.get(("histogram", name))
        if histogram is None:
            histogram = self.registry.histogram(
                name, boundaries=boundaries, **self.labels()
            )
            self._metric_cache[("histogram", name)] = histogram
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Cross-process payloads
    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """Plain-data snapshot a worker ships back to the parent."""
        return {"registry": self.registry.to_dict(), "spans": self.tracer.to_payload()}

    def merge_payload(self, payload: Mapping) -> None:
        """Fold a worker's payload in: exact registry merge + a new span lane."""
        self.registry.merge(payload["registry"])
        self.tracer.extend(payload["spans"], pid=self.tracer.next_pid)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, directory, manifest: Mapping | None = None) -> dict[str, str]:
        """Write metrics, spans, trace (and optionally a manifest) to a dir.

        Returns:
            Mapping of artifact kind to written path.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "metrics_json": os.path.join(directory, METRICS_JSON),
            "metrics_prom": os.path.join(directory, METRICS_PROM),
            "spans_jsonl": os.path.join(directory, SPANS_JSONL),
            "trace_json": os.path.join(directory, TRACE_JSON),
        }
        # Atomic writes throughout: exports often happen in a `finally`
        # after a failing run, exactly when a second crash mid-write must
        # not shred the artifacts a post-mortem depends on.
        from repro.state.io import atomic_write_json, atomic_write_text

        atomic_write_json(paths["metrics_json"], self.registry.to_dict())
        atomic_write_text(paths["metrics_prom"], self.registry.prometheus_text())
        self.tracer.export_jsonl(paths["spans_jsonl"])
        self.tracer.export_chrome_trace(paths["trace_json"])
        if manifest is not None:
            paths["manifest_json"] = os.path.join(directory, MANIFEST_JSON)
            atomic_write_json(paths["manifest_json"], dict(manifest), default=str)
        return paths


#: The active telemetry of this process (None = disabled, the default).
_ACTIVE: Telemetry | None = None


def current() -> Telemetry | None:
    """The active :class:`Telemetry`, or ``None`` while disabled."""
    return _ACTIVE


def enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return _ACTIVE is not None


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) the process-wide telemetry object."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> None:
    """Turn telemetry collection off (instrumentation reverts to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def use(telemetry: Telemetry):
    """Scoped activation, restoring whatever was active before."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Module-level instrumentation helpers (the hot-path API).
# Disabled cost: one global read and an early return.
# ----------------------------------------------------------------------
def span(name: str, **attrs: str):
    """A live span against the active telemetry; no-op when disabled."""
    telemetry = _ACTIVE
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, **attrs)


def add(name: str, amount: float = 1.0, **labels) -> None:
    """Counter increment against the active telemetry; no-op when disabled."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.add(name, amount, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Gauge write against the active telemetry; no-op when disabled."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.set_gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    boundaries: Iterable[float] = COUNT_BOUNDARIES,
    **labels,
) -> None:
    """Histogram observation against the active telemetry; no-op when disabled."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.observe(name, value, boundaries=boundaries, **labels)
