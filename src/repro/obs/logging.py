"""Diagnostic logging: stdlib ``logging`` routed to stderr.

Result tables and series stay on stdout (they are the program's output and
pipe cleanly into files and diffs); everything *about* a run — progress,
save locations, telemetry destinations — goes through a ``repro.*`` logger
to stderr, controlled by the CLI's global ``-v`` / ``--quiet`` flags.

Library code calls :func:`get_logger` and logs; only entry points (the CLI,
scripts) call :func:`setup_cli_logging`, so embedding the library never
hijacks the host application's logging configuration.
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

#: Root logger name of the package's diagnostics tree.
ROOT_LOGGER = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` diagnostics tree."""
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(f"{ROOT_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def verbosity_level(verbosity: int) -> int:
    """Map a CLI verbosity (-1 = quiet, 0 = default, >=1 = verbose) to a level."""
    if verbosity < 0:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def setup_cli_logging(verbosity: int = 0, stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logger for a CLI invocation.

    Args:
        verbosity: ``-1`` (``--quiet``) shows warnings only, ``0`` the
            default info diagnostics, ``>= 1`` (``-v``) debug detail.
        stream: destination (defaults to stderr).

    Replaces any handler installed by a previous call, so repeated CLI
    invocations in one process (tests) do not stack handlers.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(verbosity_level(verbosity))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger
