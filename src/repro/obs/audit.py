"""Decision provenance: why did request ``r`` go to broker ``b``?

The quality gauges of :mod:`repro.obs.quality` say *how well* a run is
matching; this module records *why each individual match happened*.  While
an audit session is active, the instrumentation points capture, per day:

- the bandit side (Alg. 1): every broker's chosen capacity arm together
  with the selection rule that picked it (``coverage`` / ``epsilon`` /
  ``ucb`` / the personalized variants) and — when the arm came from a UCB
  argmax — the predicted mean and exploration bonus behind the score;
- the assignment side (Alg. 2/3), for sampled batches: the available set
  ``B+``, how many brokers CBS kept and the prune ratio, and per realized
  KM edge the raw utility, the Eq. 15 value-refined utility (their delta
  is the refinement term), the broker's residual quota at match time, and
  the top runner-up candidates by refined score.

One compact JSONL record per day is appended through the same crash-safe
discipline as :mod:`repro.obs.stream` (fsync'd appends, torn-tail-tolerant
reads, fresh writers replacing stale same-name segments).  ``run_many``
workers write per-spec segments named like stream segments, so segment
name order is spec order and a ``jobs=N`` run leaves byte-identical audit
files to the serial one.

Sampling is **index-based** — a batch is audited iff its global batch
index ``day * batches_per_day + batch`` is a multiple of ``sample_every``
— so a killed-and-resumed run audits exactly the batches the
straight-through run would, and no RNG is ever consumed: audited runs are
bit-identical to unaudited ones.

``repro-lacb explain RUN_DIR`` reconstructs and pretty-prints the decision
paths (see :func:`repro.obs.report.render_explain`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.state.io import append_jsonl, read_jsonl

#: Subdirectory of a telemetry dir holding audit segments.
AUDIT_DIRNAME = "audit"

#: Schema tag stamped on every audit record.
AUDIT_SCHEMA = "repro.obs.audit/v1"

#: Decimal digits kept on every recorded float: audit records are written
#: once per day but hold per-assignment detail, so compactness matters
#: more than the 5th decimal of a utility.
ROUND_DIGITS = 4


def audit_dir_for(directory) -> str:
    """The conventional audit subdirectory of a telemetry directory."""
    return os.path.join(os.fspath(directory), AUDIT_DIRNAME)


def _round(value) -> float | None:
    return None if value is None else round(float(value), ROUND_DIGITS)


@dataclass(frozen=True)
class AuditConfig:
    """Provenance knobs (picklable — ships to ``run_many`` workers).

    Attributes:
        sample_every: audit every Nth batch by global batch index
            (``1`` = every batch; raise it at scale to bound record size).
        top_alternatives: runner-up candidates kept per realized edge.
    """

    sample_every: int = 1
    top_alternatives: int = 3

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.top_alternatives < 0:
            raise ValueError(
                f"top_alternatives must be >= 0, got {self.top_alternatives}"
            )


class BatchTrail:
    """Scratch collector for one sampled batch (filled by VFGA)."""

    __slots__ = ("day", "batch", "requests", "available", "kept", "pruned_ratio", "decisions")

    def __init__(self, day: int, batch: int) -> None:
        self.day = day
        self.batch = batch
        self.requests = 0
        self.available: int | None = None
        self.kept: int | None = None
        self.pruned_ratio: float | None = None
        self.decisions: list[tuple] = []

    def add_decision(
        self,
        request_id: int,
        broker_id: int,
        raw: float,
        refined: float,
        residual: float,
        capacity: float,
        workload: int,
        alternatives: list[tuple[int, float, float]] = (),
    ) -> None:
        """One realized KM edge with its refinement terms and runners-up.

        Hot path: appends one plain tuple.  Rounding and dict packaging
        happen in :meth:`to_dict` at the day-boundary flush, off the
        decision-time path the audit benchmark budgets.
        """
        self.decisions.append(
            (request_id, broker_id, raw, refined, residual, capacity, workload,
             alternatives)
        )

    def to_dict(self) -> dict:
        return {
            "batch": int(self.batch),
            "requests": int(self.requests),
            "available": None if self.available is None else int(self.available),
            "kept": None if self.kept is None else int(self.kept),
            "pruned_ratio": _round(self.pruned_ratio),
            "decisions": [
                {
                    "request": int(request),
                    "broker": int(broker),
                    "raw": _round(raw),
                    "refined": _round(refined),
                    "delta": _round(refined - raw),
                    "residual": _round(residual),
                    "capacity": _round(capacity),
                    "workload": int(workload),
                    "alternatives": [
                        [int(b), _round(r), _round(u)] for b, r, u in alternatives
                    ],
                }
                for request, broker, raw, refined, residual, capacity, workload,
                    alternatives in self.decisions
            ],
        }


class DecisionAudit:
    """Per-run provenance collector.

    Instrumentation points (bandits, VFGA) write into the active session
    via :func:`current`; :class:`~repro.obs.hook.TelemetryHook` packages
    the buffered day into one JSONL record at each day boundary and clears
    the buffer.  The collector itself never does I/O and consumes no
    randomness.
    """

    def __init__(self, config: AuditConfig, batches_per_day: int, algorithm: str) -> None:
        self.config = config
        self.batches_per_day = max(int(batches_per_day), 1)
        self.algorithm = algorithm
        self._capacity_notes: list[tuple[int, float, str, float | None, float | None]] = []
        self._batches: list[BatchTrail] = []

    # ------------------------------------------------------------------
    # Capacity estimation (Alg. 1) notes
    # ------------------------------------------------------------------
    def note_capacity(
        self,
        broker_id: int,
        capacity: float,
        rule: str,
        mean: float | None = None,
        bonus: float | None = None,
    ) -> None:
        """One broker's chosen capacity arm and the rule that picked it."""
        self._capacity_notes.append((int(broker_id), float(capacity), rule, mean, bonus))

    # ------------------------------------------------------------------
    # Assignment (Alg. 2/3) trails
    # ------------------------------------------------------------------
    def begin_batch(self, day: int, batch: int) -> BatchTrail | None:
        """A trail for this batch, or ``None`` when the batch is not sampled."""
        index = day * self.batches_per_day + batch
        if index % self.config.sample_every:
            return None
        return BatchTrail(day, batch)

    def commit_batch(self, trail: BatchTrail) -> None:
        """Buffer a completed trail for the day-boundary flush."""
        self._batches.append(trail)

    # ------------------------------------------------------------------
    # Day flush
    # ------------------------------------------------------------------
    def day_record(self, day: int) -> dict | None:
        """Package (and clear) the buffered day; ``None`` if nothing audited."""
        notes, self._capacity_notes = self._capacity_notes, []
        batches, self._batches = self._batches, []
        if not notes and not batches:
            return None
        record: dict = {"day": int(day), "algorithm": self.algorithm}
        if notes:
            record["capacity"] = {
                "broker": [n[0] for n in notes],
                "capacity": [_round(n[1]) for n in notes],
                "rule": [n[2] for n in notes],
                "mean": [_round(n[3]) for n in notes],
                "bonus": [_round(n[4]) for n in notes],
            }
        record["batches"] = [trail.to_dict() for trail in batches]
        return record


def current() -> DecisionAudit | None:
    """The active run's audit session, or ``None`` (the usual fast path).

    The session rides on the active :class:`~repro.obs.telemetry.Telemetry`
    rather than its own module global, so ``run_many``'s per-spec telemetry
    scoping isolates audit sessions for free, and a run that dies mid-day
    cannot leak a live session into the next run's records.
    """
    from repro.obs import telemetry as obs_telemetry

    telemetry = obs_telemetry.current()
    return telemetry.audit_session if telemetry is not None else None


class AuditWriter:
    """Appends day records for one run to one audit segment file.

    Mirrors :class:`~repro.obs.stream.TelemetryStreamWriter`'s durability
    discipline: fsync'd JSONL appends, strictly increasing ``seq``, and a
    fresh writer (seq 0) replaces a stale same-name segment so re-running
    into the same telemetry directory never corrupts the feed.
    """

    def __init__(self, directory, segment: str = "run") -> None:
        self.directory = os.fspath(directory)
        self.segment = segment
        self.path = os.path.join(self.directory, f"{segment}.jsonl")
        self.seq = 0

    def append(self, record: dict) -> None:
        """Stamp schema/seq/segment onto one day record and append it."""
        if self.seq == 0 and os.path.exists(self.path):
            os.remove(self.path)
        record = {
            "schema": AUDIT_SCHEMA,
            "seq": self.seq,
            "segment": self.segment,
            **record,
        }
        append_jsonl(self.path, record)
        self.seq += 1


@dataclass
class AuditSegment:
    """Everything recoverable from one audit segment file."""

    segment: str
    path: str
    records: list[dict] = field(default_factory=list)


@dataclass
class AuditView:
    """The merged view over every segment of an audit directory."""

    directory: str
    segments: list[AuditSegment] = field(default_factory=list)

    def records(self) -> list[dict]:
        """All day records, in segment-name (= spec) order."""
        merged: list[dict] = []
        for segment in self.segments:
            merged.extend(segment.records)
        return merged

    def decisions(
        self,
        day: int | None = None,
        request: int | None = None,
        broker: int | None = None,
    ) -> Iterator[tuple[dict, dict, dict]]:
        """Iterate ``(day record, batch entry, decision)`` matching filters."""
        for record in self.records():
            if day is not None and record.get("day") != day:
                continue
            for batch in record.get("batches", ()):
                for decision in batch.get("decisions", ()):
                    if request is not None and decision.get("request") != request:
                        continue
                    if broker is not None and decision.get("broker") != broker:
                        continue
                    yield record, batch, decision


def read_audit_segment(path) -> AuditSegment | None:
    """Read one segment file; ``None`` if it holds no complete record yet.

    Raises:
        ValueError: on a non-increasing ``seq`` — impossible under the
            single-writer append discipline, so it indicates damage.
    """
    path = os.fspath(path)
    records = [r for r in read_jsonl(path) if r.get("schema") == AUDIT_SCHEMA]
    if not records:
        return None
    last_seq = -1
    for record in records:
        seq = int(record.get("seq", -1))
        if seq <= last_seq:
            raise ValueError(f"audit segment {path}: non-increasing seq {seq}")
        last_seq = seq
    return AuditSegment(
        segment=os.path.splitext(os.path.basename(path))[0],
        path=path,
        records=records,
    )


def read_audit(directory) -> AuditView:
    """Read every segment of an audit directory, in segment-name order.

    A missing directory yields an empty view — "nothing audited" is a
    state the explain command renders, not an error.
    """
    directory = os.fspath(directory)
    view = AuditView(directory=directory)
    if not os.path.isdir(directory):
        return view
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".jsonl"):
            continue
        segment = read_audit_segment(os.path.join(directory, name))
        if segment is not None:
            view.segments.append(segment)
    return view
