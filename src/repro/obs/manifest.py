"""Run manifests: who produced a result, from what, on which build.

Every telemetry directory (and any exported result that wants one) carries
a ``manifest.json`` answering the questions a regression hunt starts with:
which command and arguments ran, which seeds, which git commit, which
python/numpy/platform, and how long the whole invocation took.

Schema (``repro.obs.manifest/v1``)::

    {
      "schema": "repro.obs.manifest/v1",
      "created_utc": "2026-08-06T12:00:00+00:00",
      "repro_version": "1.0.0",
      "git_sha": "82432c6..." | null,
      "python": "3.11.9",
      "platform": "Linux-...",
      "numpy": "1.26.4",
      "command": "compare",
      "args": {"brokers": 200, ...},
      "runs": [{"algorithm": "LACB-Opt", "matcher_seed": 7, "platform": "..."}],
      "wall_seconds": 12.34
    }
"""

from __future__ import annotations

import os
import platform as _platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Mapping, Sequence

import numpy as np

MANIFEST_SCHEMA = "repro.obs.manifest/v1"


def repro_version() -> str:
    """The installed package version (falls back to the source tree's)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return getattr(repro, "__version__", "unknown")


def git_sha() -> str | None:
    """The source tree's HEAD commit, or ``None`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def describe_specs(specs: Sequence) -> list[dict]:
    """Summaries of :class:`~repro.engine.spec.RunSpec` runs for a manifest."""
    described = []
    for spec in specs:
        entry = {
            "algorithm": spec.matcher.name,
            "matcher_seed": spec.matcher.seed,
            "platform": repr(spec.platform.cache_key()),
            "tag": spec.tag,
        }
        # Checkpoint lineage: where this run's durable state lives and
        # whether it continued an earlier segment (see docs/state.md).
        if getattr(spec, "checkpoint_dir", None) or getattr(spec, "resume_from", None):
            entry["checkpoint"] = {
                "run_id": spec.run_id(),
                "checkpoint_dir": spec.checkpoint_dir,
                "checkpoint_every": spec.checkpoint_every,
                "resume_from": spec.resume_from,
            }
        described.append(entry)
    return described


def describe_telemetry(telemetry) -> dict | None:
    """Telemetry lineage of a run: its live stream directory and segments.

    Returns ``None`` when the telemetry never streamed (nothing to link).
    Each segment entry records its name, last flushed day, flush count and
    whether its run completed — the counterpart of the
    ``telemetry_segment`` field on checkpoint index lines, so manifests
    and checkpoints cross-reference the same lineage.
    """
    stream_dir = getattr(telemetry, "stream_dir", None)
    if not stream_dir:
        return None
    from repro.obs.stream import read_stream

    view = read_stream(stream_dir)
    described = {
        "stream_dir": stream_dir,
        "complete": view.complete,
        "segments": [
            {
                "segment": segment.segment,
                "day": segment.day,
                "flushes": segment.flushes,
                "final": segment.final,
            }
            for segment in view.segments
        ],
    }
    audit_dir = getattr(telemetry, "audit_dir", None)
    if audit_dir and getattr(telemetry, "audit", None) is not None:
        from repro.obs.audit import read_audit

        audit_view = read_audit(audit_dir)
        described["audit"] = {
            "audit_dir": audit_dir,
            "sample_every": telemetry.audit.sample_every,
            "segments": [
                {"segment": segment.segment, "days": len(segment.records)}
                for segment in audit_view.segments
            ],
        }
    return described


def build_manifest(
    command: str | None = None,
    args: Mapping | None = None,
    specs: Sequence | None = None,
    wall_seconds: float | None = None,
    extra: Mapping | None = None,
) -> dict:
    """Assemble a manifest dictionary (see module docstring for the schema)."""
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repro_version": repro_version(),
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "numpy": np.__version__,
        "argv": list(sys.argv),
    }
    if command is not None:
        manifest["command"] = command
    if args is not None:
        manifest["args"] = {k: _plain(v) for k, v in args.items()}
    if specs is not None:
        manifest["runs"] = describe_specs(specs)
    if wall_seconds is not None:
        manifest["wall_seconds"] = float(wall_seconds)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(directory, manifest: Mapping) -> str:
    """Write ``manifest.json`` into ``directory``; returns the path.

    The write is atomic (write-temp-then-rename): a manifest is the record
    a regression hunt trusts, so a crash mid-export must leave either the
    previous manifest or the new one — never a torn file.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "manifest.json")
    from repro.state.io import atomic_write_json

    atomic_write_json(path, dict(manifest), default=str)
    return path


def _plain(value):
    """JSON-safe rendering of one argparse namespace value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return repr(value)
