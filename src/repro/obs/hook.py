"""TelemetryHook: the bridge from engine lifecycle events to metrics/spans.

The day-loop engine measures matcher seconds itself (the timing seam of
:mod:`repro.engine.loop`); this hook never re-times anything.  It books the
engine-measured ``matcher_seconds`` into per-phase timers
(``engine.begin_day`` / ``engine.assign_batch`` / ``engine.end_day`` —
their totals sum exactly to ``RunResult.decision_time``), synthesizes the
corresponding spans for the Chrome trace (carrying the engine-measured CPU
seconds), and accumulates the workload / utility / assignment
distributions the paper's figures are built from.

When the owning :class:`~repro.obs.telemetry.Telemetry` carries a
:class:`~repro.obs.stream.TelemetryStreamWriter`, the hook additionally
flushes the registry and new spans to the stream at every day boundary,
together with a progress record (day, batches, req/s, decision-time
percentiles, per-day quality) — the live feed ``repro-lacb watch``
renders and ``report`` falls back to for crashed runs.

:class:`~repro.engine.loop.DayLoopEngine` attaches this hook automatically
whenever :func:`repro.obs.telemetry.current` is active, so telemetry rides
along with every entry point — ``run_algorithm``, spec execution, sweeps,
the CLI — without any caller wiring.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.hooks import RunHook
from repro.engine.loop import BatchAssignedEvent, DayEndEvent, DayStartEvent, RunContext
from repro.obs.alerts import AlertMonitor
from repro.obs.audit import AuditWriter, DecisionAudit
from repro.obs.metrics import COUNT_BOUNDARIES
from repro.obs.quality import QualityMonitor
from repro.obs.telemetry import Telemetry

#: Histogram boundaries for per-day realized utility (spans tiny test
#: instances through paper-scale cities).
UTILITY_BOUNDARIES = (0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)


class TelemetryHook(RunHook):
    """Feed engine lifecycle events into a :class:`Telemetry` object.

    Args:
        telemetry: the sink; hooks constructed by the engine pass the
            process's active telemetry.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry
        self._previous_label: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_run_start(self, context: RunContext) -> None:
        telemetry = self.telemetry
        self._previous_label = telemetry.run_label
        telemetry.set_run_label(context.matcher.name)
        telemetry.add("engine.runs")
        telemetry.set_gauge("engine.num_days", context.num_days)
        telemetry.set_gauge("engine.num_brokers", context.num_brokers)
        telemetry.set_gauge("engine.batches_per_day", context.batches_per_day)
        # Resolve every per-event metric once: on_batch_assigned fires for
        # every batch, and per-call registry lookups (label sorting, key
        # construction) would dominate the telemetry overhead budget.
        registry, labels = telemetry.registry, telemetry.labels()
        self._begin_timer = registry.timer("engine.begin_day", **labels)
        self._assign_timer = registry.timer("engine.assign_batch", **labels)
        self._end_timer = registry.timer("engine.end_day", **labels)
        self._batches = registry.counter("engine.batches", **labels)
        self._assignments = registry.counter("engine.assignments", **labels)
        self._days = registry.counter("engine.days", **labels)
        self._served = registry.counter("engine.served_broker_days", **labels)
        self._batch_requests = registry.histogram(
            "engine.batch_requests", boundaries=COUNT_BOUNDARIES, **labels
        )
        self._day_utility = registry.histogram(
            "engine.day_utility", boundaries=UTILITY_BOUNDARIES, **labels
        )
        self._broker_workload = registry.histogram(
            "engine.broker_workload", boundaries=COUNT_BOUNDARIES, **labels
        )
        # Progress accounting for the streaming feed (wall clock, not the
        # decision-time seam: req/s is a serving-rate, not a result).
        self._run_meta = {
            "algorithm": context.matcher.name,
            "num_days": context.num_days,
            "num_brokers": context.num_brokers,
            "batches_per_day": context.batches_per_day,
        }
        self._wall_start = time.perf_counter()
        self._requests_seen = 0
        self._utility_total = 0.0
        self._last_progress: dict = dict(self._run_meta, day=-1)
        # Quality telemetry + drift alerting (see repro.obs.quality/alerts).
        self._quality = QualityMonitor(telemetry, context)
        self._alerts = AlertMonitor()
        self._alerts_sent = 0
        # Decision provenance: a fresh collector per run, but one writer
        # per telemetry — sequential runs into one telemetry directory keep
        # appending to the same segment with increasing seq (a fresh writer
        # would delete the previous run's records at its first append).
        if telemetry.audit is not None and telemetry.audit_dir is not None:
            if telemetry.audit_writer is None:
                telemetry.audit_writer = AuditWriter(
                    telemetry.audit_dir, segment=telemetry.audit_segment
                )
            telemetry.audit_session = DecisionAudit(
                telemetry.audit, context.batches_per_day, context.matcher.name
            )

    def on_day_start(self, event: DayStartEvent) -> None:
        self._begin_timer.observe(event.matcher_seconds)
        self.telemetry.record_span(
            "engine.begin_day",
            event.matcher_seconds,
            cpu=event.matcher_cpu_seconds,
            day=str(event.day),
        )

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        self._assign_timer.observe(event.matcher_seconds)
        self.telemetry.record_span(
            "engine.assign_batch",
            event.matcher_seconds,
            cpu=event.matcher_cpu_seconds,
            day=str(event.day),
            batch=str(event.batch),
        )
        self._batches.inc()
        self._assignments.inc(len(event.assignment))
        self._batch_requests.observe(event.request_ids.size)
        self._requests_seen += int(event.request_ids.size)
        self._quality.on_batch(event)

    def on_day_end(self, event: DayEndEvent) -> None:
        self._end_timer.observe(event.matcher_seconds)
        self.telemetry.record_span(
            "engine.end_day",
            event.matcher_seconds,
            cpu=event.matcher_cpu_seconds,
            day=str(event.day),
        )
        self._days.inc()
        outcome = event.outcome
        self._day_utility.observe(float(outcome.total_realized_utility))
        workloads = np.asarray(outcome.workloads)
        for workload in workloads:
            self._broker_workload.observe(float(workload))
        self._served.inc(int((workloads > 0).sum()))
        telemetry = self.telemetry
        quality = self._quality.on_day_end(event)
        drift_fields = dict(
            quality, day_utility=float(outcome.total_realized_utility)
        )
        raised = self._alerts.observe_day(
            event.day, drift_fields, algorithm=self._run_meta["algorithm"]
        )
        if raised:
            telemetry.add("alerts.raised", len(raised))
        session = telemetry.audit_session
        if session is not None and telemetry.audit_writer is not None:
            record = session.day_record(event.day)
            if record is not None:
                telemetry.audit_writer.append(record)
                telemetry.add("audit.days")
                telemetry.add(
                    "audit.decisions",
                    sum(len(b["decisions"]) for b in record["batches"]),
                )
        stream = telemetry.stream
        if stream is not None:
            self._last_progress = dict(self._progress(event, workloads), **quality)
            # Alerts stream as deltas (like spans): only advance the sent
            # cursor when a flush actually happened — skipped days re-offer
            # their alerts at the next boundary.
            pending = [a.to_dict() for a in self._alerts.alerts[self._alerts_sent :]]
            if stream.maybe_flush(
                telemetry,
                day=event.day,
                progress=self._last_progress,
                alerts=pending,
            ):
                self._alerts_sent = len(self._alerts.alerts)

    def on_run_end(self, context: RunContext) -> None:
        telemetry = self.telemetry
        stream = telemetry.stream
        if stream is not None:
            stream.flush(
                telemetry,
                day=self._last_progress.get("day", -1),
                progress=self._last_progress,
                final=True,
                alerts=[a.to_dict() for a in self._alerts.alerts[self._alerts_sent :]],
            )
            self._alerts_sent = len(self._alerts.alerts)
        telemetry.audit_session = None
        telemetry.set_run_label(self._previous_label)

    # ------------------------------------------------------------------
    # Streaming progress
    # ------------------------------------------------------------------
    def _progress(self, event: DayEndEvent, workloads: np.ndarray) -> dict:
        """One day's live status: throughput, latency percentiles, quality."""
        wall = time.perf_counter() - self._wall_start
        outcome = event.outcome
        self._utility_total += float(outcome.total_realized_utility)
        served = float((workloads > 0).mean()) if workloads.size else 0.0
        mean_workload = float(workloads.mean()) if workloads.size else 0.0
        dispersion = (
            float(workloads.std() / mean_workload) if mean_workload > 0 else 0.0
        )
        sketch = self._assign_timer.sketch
        p50, p95, p99 = sketch.quantiles() if sketch.count else (0.0, 0.0, 0.0)
        return dict(
            self._run_meta,
            day=event.day,
            batches=int(self._batches.value),
            assignments=int(self._assignments.value),
            requests=self._requests_seen,
            wall_seconds=wall,
            requests_per_second=(self._requests_seen / wall) if wall > 0 else 0.0,
            decision_seconds=(
                self._begin_timer.total + self._assign_timer.total + self._end_timer.total
            ),
            assign_p50=p50,
            assign_p95=p95,
            assign_p99=p99,
            day_utility=float(outcome.total_realized_utility),
            total_utility=self._utility_total,
            utilization=served,
            workload_dispersion=dispersion,
        )
