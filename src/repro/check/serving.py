"""Serving/batch equivalence: boundary-flush serving must *be* the day loop.

The serving stack's foundational claim (:mod:`repro.serving`) is that the
event-driven engine generalizes the paper's fixed windows rather than
quietly replacing them: with the degenerate micro-batch policy
(``max_wait = window_seconds``, unbounded size) every window flushes as
exactly one micro-batch at the window boundary, and the run must be
**bit-identical** to the batch day loop — same assignments, same daily
utilities, same outcomes, same final matcher and platform state.

This module proves that claim the same way :mod:`repro.check.resume`
proves checkpoint transparency: run both engines on fresh copies of a
small simulated city, compare the :class:`~repro.engine.hooks.RunResult`
field-by-field (timing excluded — wall-clock is not replayable) via the
shared comparator, and compare final snapshots with
:func:`~repro.state.state_equal`.  The suite cycles algorithms — the
neural VFGA-style matcher, the full LACB stack and its CBS-enabled
variant — and both arrival profiles, so the equivalence is not an
artifact of one scheduler or one demand shape.
"""

from __future__ import annotations

from repro.check.resume import _build, _compare_results
from repro.check.runtime import Violation
from repro.obs import telemetry as obs

#: Algorithms cycled by :func:`run_serving_suite`: the neural assignment
#: matcher (VFGA with both switches off), the paper's LACB and the
#: CBS-enabled LACB-Opt.
SUITE_ALGORITHMS = ("AN", "LACB", "LACB-Opt")


def check_serving_equivalence(
    algorithm: str = "LACB",
    profile: str = "uniform",
    num_brokers: int = 12,
    num_requests: int = 90,
    num_days: int = 4,
    seed: int = 7,
    instance_seed: int = 1,
    window_seconds: float = 60.0,
    arrival_seed: int = 0,
) -> list[Violation]:
    """Prove batch day loop ≡ boundary-flush serving for one scenario.

    Args:
        algorithm: registry name of the matcher under test.
        profile: arrival profile; the equivalence must hold for *any*
            profile, because boundary flushing erases intra-window times.
        num_brokers / num_requests / num_days: simulated-city size.
        seed / instance_seed: matcher and city seeds.
        window_seconds: virtual window length of the serving timeline.
        arrival_seed: seed of the intra-window arrival draw.

    Returns:
        Violations (empty when the equivalence holds bitwise).
    """
    from repro.engine.loop import DayLoopEngine
    from repro.engine.spec import PlatformSpec
    from repro.serving import MicroBatchPolicy, ServingEngine
    from repro.simulation.datasets import SyntheticConfig
    from repro.state import state_equal

    platform_spec = PlatformSpec.synthetic(
        SyntheticConfig(
            num_brokers=num_brokers,
            num_requests=num_requests,
            num_days=num_days,
            seed=instance_seed,
        )
    )
    violations: list[Violation] = []

    platform, matcher, collector = _build(platform_spec, algorithm, seed)
    DayLoopEngine().run(platform, matcher, hooks=(collector,))
    batch_result = collector.result

    platform2, matcher2, collector2 = _build(platform_spec, algorithm, seed)
    engine = ServingEngine(
        policy=MicroBatchPolicy.boundary(window_seconds),
        window_seconds=window_seconds,
        profile=profile,
        arrival_seed=arrival_seed,
    )
    report = engine.run(platform2, matcher2, hooks=(collector2,))
    serving_result = collector2.result

    violations.extend(
        _compare_results(
            batch_result,
            serving_result,
            algorithm,
            prefix="serving",
            labels=("batch", "serving"),
        )
    )
    if report.flush_reasons["boundary"] != report.micro_batches:
        violations.append(
            Violation(
                "serving.policy_not_degenerate",
                f"boundary policy flushed {report.flush_reasons} — every "
                "micro-batch must close at the window boundary",
                algorithm=algorithm,
            )
        )
    if not state_equal(matcher.snapshot(), matcher2.snapshot()):
        violations.append(
            Violation(
                "serving.matcher_state_diverges",
                "final matcher snapshots differ between batch and serving runs",
                algorithm=algorithm,
            )
        )
    if not state_equal(platform.snapshot(), platform2.snapshot()):
        violations.append(
            Violation(
                "serving.platform_state_diverges",
                "final platform snapshots differ between batch and serving runs",
                algorithm=algorithm,
            )
        )
    obs.add("check.serving_cases")
    if violations:
        obs.add("check.violations", invariant="serving.equivalence")
    return violations


def run_serving_suite(
    algorithms: tuple[str, ...] = SUITE_ALGORITHMS,
    profiles: tuple[str, ...] = ("uniform", "bursty"),
    num_days: int = 4,
    seed: int = 7,
) -> tuple[int, list[Violation]]:
    """The full algorithm × profile equivalence grid.

    Returns:
        ``(cases_run, violations)``.
    """
    violations: list[Violation] = []
    cases_run = 0
    for algorithm in algorithms:
        for profile in profiles:
            with obs.span("check.serving_case", algorithm=algorithm, profile=profile):
                violations.extend(
                    check_serving_equivalence(
                        algorithm=algorithm,
                        profile=profile,
                        num_days=num_days,
                        seed=seed,
                    )
                )
            cases_run += 1
    return cases_run, violations
