"""Checkpoint/resume equivalence: an interrupted run must not be observable.

The durable-state contract (:mod:`repro.state`, ``docs/state.md``) promises
that a run checkpointed at a day boundary, killed, and resumed in a fresh
process produces *bit-identical* results to the same run executed straight
through.  This module proves that promise on small simulated cities:

1. **Straight run** — execute all ``num_days`` days in one go, keeping the
   final matcher/platform objects for state comparison.
2. **Interrupted run** — fresh objects, checkpoint every day boundary, and
   raise :class:`~repro.state.RunInterrupted` right after day ``kill_day``'s
   checkpoint was written (the crash the layer is designed for: dying
   *after* the durable write).
3. **Resumed run** — a third set of fresh objects restored from the store's
   latest checkpoint, run from ``kill_day + 1`` to the horizon.

Straight and resumed runs are then compared field-by-field: every
:class:`~repro.engine.hooks.RunResult` number and array must match
bitwise (timing fields excluded — wall-clock is not replayable), every
logged assignment pair must match, and the final matcher and platform
snapshots must be :func:`~repro.state.state_equal`.

:func:`run_resume_suite` wraps this in a seeded property test drawing
random kill days (and cycling algorithms), so the equivalence holds at
*every* boundary, not just a hand-picked one.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile

import numpy as np

from repro.check.runtime import Violation
from repro.obs import telemetry as obs

#: RunResult fields excluded from the bitwise comparison: decision time is
#: wall-clock, so two segments can never reproduce one segment's timings.
#: Timer *state* still round-trips (totals accumulate across segments) —
#: that is covered by the hook round-trip tests, not by equivalence.
TIMING_FIELDS = ("decision_time", "daily_decision_time")

#: Algorithms cycled by :func:`run_resume_suite` — the stateless KM
#: baseline, the full LACB stack (bandit + value function + shared RNG)
#: and the neural-assignment matcher (deep bandit + optimizer state).
SUITE_ALGORITHMS = ("LACB", "AN", "Top-3")


def _build(platform_spec, algorithm: str, seed: int):
    """One fresh (platform, matcher, collector) triple for one segment."""
    from repro.engine.hooks import MetricsCollector
    from repro.engine.spec import MatcherSpec

    platform = platform_spec.build()
    matcher = MatcherSpec(algorithm, seed=seed).build(platform)
    collector = MetricsCollector(store_outcomes=True, store_assignments=True)
    return platform, matcher, collector


def _compare_results(
    straight,
    resumed,
    algorithm: str,
    prefix: str = "resume",
    labels: tuple[str, str] = ("straight", "resumed"),
) -> list[Violation]:
    """Bitwise RunResult comparison, timing excluded.

    Shared by every ≡-style suite: resume equivalence compares a straight
    run against a checkpoint/kill/resume run, serving equivalence
    (:mod:`repro.check.serving`) a batch day loop against a
    boundary-flush serving run.  ``prefix`` names the violations
    (``<prefix>.result_diverges`` etc.), ``labels`` the two sides.
    """
    violations: list[Violation] = []
    left, right = labels
    for field in dataclasses.fields(straight):
        if field.name in TIMING_FIELDS:
            continue
        a = getattr(straight, field.name)
        b = getattr(resumed, field.name)
        if field.name == "assignments":
            flat_a = [(x.day, x.batch, p.request_id, p.broker_id, p.utility) for x in a for p in x.pairs]
            flat_b = [(x.day, x.batch, p.request_id, p.broker_id, p.utility) for x in b for p in x.pairs]
            if flat_a != flat_b:
                violations.append(
                    Violation(
                        f"{prefix}.assignments_diverge",
                        f"{len(flat_a)} {left} vs {len(flat_b)} {right} assignment "
                        "pairs, or pair contents differ",
                        algorithm=algorithm,
                    )
                )
            continue
        if field.name == "outcomes":
            same = len(a) == len(b) and all(
                np.array_equal(x.workloads, y.workloads)
                and np.array_equal(x.signup_rates, y.signup_rates)
                and np.array_equal(x.realized_utility, y.realized_utility)
                for x, y in zip(a, b)
            )
            if not same:
                violations.append(
                    Violation(
                        f"{prefix}.outcomes_diverge",
                        f"stored day outcomes differ between {left} and {right} runs",
                        algorithm=algorithm,
                    )
                )
            continue
        if isinstance(a, np.ndarray):
            same = a.shape == b.shape and np.array_equal(a, b, equal_nan=True)
        elif isinstance(a, float):
            same = a == b or (np.isnan(a) and np.isnan(b))
        else:
            same = a == b
        if not same:
            violations.append(
                Violation(
                    f"{prefix}.result_diverges",
                    f"RunResult.{field.name}: {left} {a!r} != {right} {b!r}",
                    algorithm=algorithm,
                )
            )
    return violations


def check_resume_equivalence(
    algorithm: str = "LACB",
    kill_day: int = 2,
    num_brokers: int = 12,
    num_requests: int = 90,
    num_days: int = 6,
    seed: int = 7,
    instance_seed: int = 1,
    directory: str | None = None,
) -> list[Violation]:
    """Prove straight-through ≡ checkpoint/kill/resume for one scenario.

    Args:
        algorithm: registry name of the matcher under test.
        kill_day: day whose boundary the interrupted segment dies at
            (its checkpoint is written first; must be < ``num_days``).
        num_brokers / num_requests / num_days: simulated-city size.
        seed / instance_seed: matcher and city seeds.
        directory: checkpoint store location; a throwaway temp directory
            (removed afterwards) when omitted.

    Returns:
        Violations (empty when the equivalence holds bitwise).
    """
    from repro.engine.loop import DayLoopEngine
    from repro.engine.spec import PlatformSpec
    from repro.simulation.datasets import SyntheticConfig
    from repro.state import (
        CheckpointHook,
        CheckpointStore,
        RunInterrupted,
        StopAfterDay,
        state_equal,
    )

    if not 0 <= kill_day < num_days:
        raise ValueError(f"kill_day must be in [0, {num_days}), got {kill_day}")
    platform_spec = PlatformSpec.synthetic(
        SyntheticConfig(
            num_brokers=num_brokers,
            num_requests=num_requests,
            num_days=num_days,
            seed=instance_seed,
        )
    )
    temp_dir = None
    if directory is None:
        directory = temp_dir = tempfile.mkdtemp(prefix="repro-resume-check-")
    violations: list[Violation] = []
    try:
        engine = DayLoopEngine()

        platform, matcher, collector = _build(platform_spec, algorithm, seed)
        engine.run(platform, matcher, hooks=(collector,))
        straight = collector.result

        store = CheckpointStore(directory)
        run_id = f"{algorithm}-resume-check"
        platform2, matcher2, collector2 = _build(platform_spec, algorithm, seed)
        hook = CheckpointHook(store, run_id=run_id, components={"collector": collector2})
        try:
            engine.run(
                platform2,
                matcher2,
                hooks=(collector2, hook, StopAfterDay(kill_day)),
            )
        except RunInterrupted:
            pass
        else:
            violations.append(
                Violation(
                    "resume.interrupt_missed",
                    f"StopAfterDay({kill_day}) did not interrupt the run",
                    algorithm=algorithm,
                )
            )
            return violations

        record = store.latest(run_id=run_id)
        if record is None or record.day != kill_day:
            violations.append(
                Violation(
                    "resume.checkpoint_missing",
                    f"expected a day-{kill_day} checkpoint, found "
                    f"{'none' if record is None else f'day {record.day}'}",
                    algorithm=algorithm,
                )
            )
            return violations

        platform3, matcher3, collector3 = _build(platform_spec, algorithm, seed)
        state = store.load(record)
        platform3.restore(state["platform"])
        matcher3.restore(state["matcher"])
        collector3.restore(state["hooks"]["collector"])
        engine.run(platform3, matcher3, hooks=(collector3,), start_day=record.day + 1)
        resumed = collector3.result

        violations.extend(_compare_results(straight, resumed, algorithm))
        if not state_equal(matcher.snapshot(), matcher3.snapshot()):
            violations.append(
                Violation(
                    "resume.matcher_state_diverges",
                    "final matcher snapshots differ between straight and resumed runs",
                    algorithm=algorithm,
                )
            )
        if not state_equal(platform.snapshot(), platform3.snapshot()):
            violations.append(
                Violation(
                    "resume.platform_state_diverges",
                    "final platform snapshots differ between straight and resumed runs",
                    algorithm=algorithm,
                )
            )
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    obs.add("check.resume_cases")
    if violations:
        obs.add("check.violations", invariant="resume.equivalence")
    return violations


def run_resume_suite(
    num_cases: int = 2,
    seed: int = 0,
    algorithms: tuple[str, ...] = SUITE_ALGORITHMS,
    num_days: int = 5,
    directory: str | None = None,
) -> tuple[int, list[Violation]]:
    """Seeded property test: equivalence at random kill points.

    Each case draws a kill day uniformly from ``[0, num_days - 1)`` and
    cycles through ``algorithms``, so repeated CI runs with different
    ``seed`` values sweep the whole boundary × algorithm grid over time.

    Returns:
        ``(cases_run, violations)``.
    """
    import os

    rng = np.random.default_rng(seed)
    violations: list[Violation] = []
    cases_run = 0
    for index in range(num_cases):
        algorithm = algorithms[index % len(algorithms)]
        kill_day = int(rng.integers(0, max(1, num_days - 1)))
        # Each case gets its own store so repeated (algorithm, kill_day)
        # draws never read another case's checkpoints.
        case_dir = None if directory is None else os.path.join(directory, f"case-{index}")
        with obs.span("check.resume_case", algorithm=algorithm, kill_day=str(kill_day)):
            violations.extend(
                check_resume_equivalence(
                    algorithm=algorithm,
                    kill_day=kill_day,
                    num_days=num_days,
                    directory=case_dir,
                )
            )
        cases_run += 1
    return cases_run, violations
