"""Executable invariants of the assignment pipeline.

Each function here is a *pure* check: it inspects its inputs, mutates
nothing, consumes no randomness, and returns the list of
:class:`~repro.check.runtime.Violation` objects it found (empty = all
good).  Policy — raise vs collect, sampling — lives entirely in
:class:`~repro.check.runtime.CheckState`; wiring lives in
:class:`~repro.check.hook.CheckHook` and the sampled solver checks inside
:class:`~repro.core.vfga.ValueFunctionGuidedAssigner`.

The invariants encode the paper's guarantees:

* **Batch feasibility** (Sec. III / Alg. 2 line 5): a batch assignment is a
  partial one-to-one matching between the batch's requests and brokers in
  ``B+`` — each request matched at most once, each broker (for one-to-one
  matchers) at most once, every recorded utility equal to the utility
  matrix entry the matcher saw.
* **Capacity feasibility** (Def. 2): a matched broker had residual booked
  capacity at the moment of the match; workloads never exceed capacity.
* **Day accounting**: the pairs booked over a day's batches sum to the
  day's workload deltas (assigner bookkeeping, and — absent appeals — the
  platform's realized workloads).
* **KM optimality** (Alg. 2 line 7): the solver's matching achieves the
  SciPy oracle's optimal total weight.
* **CBS preservation** (Theorem 2): pruning the broker side to the CBS
  candidate set does not reduce the optimal total weight.
"""

from __future__ import annotations

import numpy as np

from repro.check.runtime import Violation
from repro.core.types import Assignment
from repro.matching.bipartite import MatchResult
from repro.matching.validation import is_valid_matching

#: Relative tolerance scale for comparing optimal totals (scaled by the
#: magnitude of the weight matrix so paper-scale utilities don't trip it).
OPTIMALITY_RTOL = 1e-6


def _tolerance(weights: np.ndarray) -> float:
    scale = float(np.max(np.abs(weights))) if weights.size else 1.0
    return OPTIMALITY_RTOL * max(1.0, scale)


# ----------------------------------------------------------------------
# Batch-level structural feasibility
# ----------------------------------------------------------------------
def check_batch_assignment(
    assignment: Assignment,
    request_ids: np.ndarray,
    utilities: np.ndarray,
    one_to_one: bool = False,
    algorithm: str | None = None,
) -> list[Violation]:
    """Feasibility of one batch matching ``M^(i)``.

    Args:
        assignment: the matching the matcher produced.
        request_ids: the batch's request ids (rows of ``utilities``).
        utilities: the ``(|R_batch|, |B|)`` matrix the matcher saw.
        one_to_one: enforce broker-at-most-once (true for assignment-style
            matchers; recommenders may legitimately pile several requests
            of one batch onto the same broker).
        algorithm: display name stamped onto violations.
    """
    violations: list[Violation] = []
    day, batch = assignment.day, assignment.batch
    request_ids = np.asarray(request_ids, dtype=int)
    num_brokers = utilities.shape[1]
    row_of_request = {int(rid): row for row, rid in enumerate(request_ids)}

    def bad(invariant: str, message: str) -> None:
        violations.append(
            Violation(invariant, message, algorithm=algorithm, day=day, batch=batch)
        )

    seen_requests: set[int] = set()
    seen_brokers: set[int] = set()
    for pair in assignment.pairs:
        row = row_of_request.get(pair.request_id)
        if row is None:
            bad("batch.unknown_request", f"request {pair.request_id} not in this batch")
            continue
        if pair.request_id in seen_requests:
            bad("batch.duplicate_request", f"request {pair.request_id} matched twice")
        seen_requests.add(pair.request_id)
        if not 0 <= pair.broker_id < num_brokers:
            bad("batch.unknown_broker", f"broker {pair.broker_id} out of range")
            continue
        if one_to_one:
            if pair.broker_id in seen_brokers:
                bad(
                    "batch.duplicate_broker",
                    f"broker {pair.broker_id} matched twice in a one-to-one batch",
                )
            seen_brokers.add(pair.broker_id)
        recorded = float(utilities[row, pair.broker_id])
        if pair.utility != recorded and not (
            np.isnan(pair.utility) and np.isnan(recorded)
        ):
            bad(
                "batch.utility_mismatch",
                f"pair ({pair.request_id}, {pair.broker_id}) recorded utility "
                f"{pair.utility!r} but the input matrix says {recorded!r}",
            )
    return violations


def check_capacity_feasibility(
    assignment: Assignment,
    capacities: np.ndarray,
    booked_before: np.ndarray,
    algorithm: str | None = None,
) -> list[Violation]:
    """Matched brokers were in ``B+`` and stay within booked capacity.

    Walks the batch's pairs in order against the workload state *before*
    the batch (``booked_before``): at the moment each pair was booked, the
    broker must have had residual capacity — i.e. the matcher only ever
    matched brokers from the available set ``B+`` of Alg. 2 line 5.

    Args:
        assignment: the batch matching.
        capacities: ``(|B|,)`` per-broker capacities ``c_b`` of the day.
        booked_before: ``(|B|,)`` requests booked per broker before this
            batch (not mutated).
        algorithm: display name stamped onto violations.
    """
    violations: list[Violation] = []
    capacities = np.asarray(capacities, dtype=float)
    booked = np.asarray(booked_before, dtype=int).copy()
    for pair in assignment.pairs:
        broker = pair.broker_id
        if not 0 <= broker < booked.size:
            continue  # reported by check_batch_assignment
        if booked[broker] >= capacities[broker]:
            violations.append(
                Violation(
                    "capacity.exceeded",
                    f"broker {broker} matched at workload {int(booked[broker])} "
                    f">= capacity {capacities[broker]:g} (not in B+)",
                    algorithm=algorithm,
                    day=assignment.day,
                    batch=assignment.batch,
                )
            )
        booked[broker] += 1
    return violations


# ----------------------------------------------------------------------
# Day-level accounting
# ----------------------------------------------------------------------
def check_day_accounting(
    day: int,
    booked: np.ndarray,
    outcome_workloads: np.ndarray | None = None,
    assigner_workloads: np.ndarray | None = None,
    algorithm: str | None = None,
) -> list[Violation]:
    """End-of-day consistency: batch pairs sum to workload deltas.

    Args:
        day: day index.
        booked: ``(|B|,)`` pairs booked per broker over the day's batches
            (accumulated from the engine's batch events).
        outcome_workloads: the platform's realized workloads; only
            comparable when no appeal process perturbs them (pass ``None``
            when ``appeal_rate > 0``).
        assigner_workloads: the assigner's internal workload ledger, when
            the matcher exposes one; must always equal the booked pairs.
        algorithm: display name stamped onto violations.
    """
    violations: list[Violation] = []
    booked = np.asarray(booked, dtype=int)
    if assigner_workloads is not None:
        assigner_workloads = np.asarray(assigner_workloads, dtype=int)
        if not np.array_equal(booked, assigner_workloads):
            diff = np.nonzero(booked != assigner_workloads)[0]
            violations.append(
                Violation(
                    "day.assigner_workload_mismatch",
                    f"assigner workload ledger disagrees with booked pairs for "
                    f"brokers {diff[:10].tolist()} "
                    f"(booked {booked[diff[:10]].tolist()}, "
                    f"ledger {assigner_workloads[diff[:10]].tolist()})",
                    algorithm=algorithm,
                    day=day,
                )
            )
    if outcome_workloads is not None:
        outcome_workloads = np.asarray(outcome_workloads, dtype=int)
        if not np.array_equal(booked, outcome_workloads):
            diff = np.nonzero(booked != outcome_workloads)[0]
            violations.append(
                Violation(
                    "day.outcome_workload_mismatch",
                    f"realized workloads disagree with booked pairs for "
                    f"brokers {diff[:10].tolist()} "
                    f"(booked {booked[diff[:10]].tolist()}, "
                    f"realized {outcome_workloads[diff[:10]].tolist()})",
                    algorithm=algorithm,
                    day=day,
                )
            )
    return violations


# ----------------------------------------------------------------------
# Solver-oracle spot checks (sampled — each runs a SciPy solve)
# ----------------------------------------------------------------------
def oracle_optimum(weights: np.ndarray) -> float:
    """Optimal *partial*-matching total weight, via the SciPy oracle.

    Matches :func:`repro.matching.solve_assignment`'s maximization
    semantics: every row additionally gets a private zero-weight dummy
    partner, so a vertex may stay unmatched at zero gain instead of taking
    a negative edge.  (Simply dropping negative edges from a forced full
    matching would *not* be equivalent — the full optimum may route the
    positive edges differently.)

    Public: the quality telemetry's online regret proxy
    (:mod:`repro.obs.quality`) reuses this as its unconstrained-KM oracle.
    """
    from scipy.optimize import linear_sum_assignment

    n_rows, n_cols = weights.shape
    if n_rows == 0 or n_cols == 0:
        return 0.0
    padded = np.hstack([weights, np.zeros((n_rows, n_rows))])
    rows, cols = linear_sum_assignment(padded, maximize=True)
    return float(padded[rows, cols].sum())


#: Backwards-compatible alias (pre-dates the public export).
_oracle_optimum = oracle_optimum


def check_km_optimality(
    weights: np.ndarray,
    match: MatchResult,
    day: int | None = None,
    batch: int | None = None,
    algorithm: str | None = None,
) -> list[Violation]:
    """The solver's matching achieves the SciPy oracle's optimum (Alg. 2 line 7).

    Structural validity, recomputed total vs reported total, and reported
    total vs the independently solved optimal total.
    """
    violations: list[Violation] = []
    weights = np.asarray(weights, dtype=float)
    n_rows, n_cols = weights.shape

    def bad(invariant: str, message: str) -> None:
        violations.append(
            Violation(invariant, message, algorithm=algorithm, day=day, batch=batch)
        )

    if not is_valid_matching(match, n_rows, n_cols):
        bad("solver.invalid_matching", f"not a one-to-one matching: {match.pairs}")
        return violations
    atol = _tolerance(weights)
    recomputed = sum(float(weights[row, col]) for row, col in match.pairs)
    if abs(recomputed - match.total_weight) > atol:
        bad(
            "solver.total_mismatch",
            f"reported total {match.total_weight!r} != recomputed {recomputed!r}",
        )
    if n_rows and n_cols:
        optimal = oracle_optimum(weights)
        if match.total_weight < optimal - atol:
            bad(
                "solver.suboptimal",
                f"total {match.total_weight!r} below oracle optimum {optimal!r}",
            )
    return violations


def check_cbs_preservation(
    utilities: np.ndarray,
    kept_columns: np.ndarray,
    day: int | None = None,
    batch: int | None = None,
    algorithm: str | None = None,
) -> list[Violation]:
    """Theorem 2: CBS pruning preserves the optimal total weight.

    Solves the full instance and the column-pruned instance with the SciPy
    oracle and demands equal optimal totals.

    Args:
        utilities: the ``(|R|, |B+|)`` pre-pruning utility matrix.
        kept_columns: column indices CBS retained.
    """
    utilities = np.asarray(utilities, dtype=float)
    kept_columns = np.asarray(kept_columns, dtype=int)
    if utilities.size == 0:
        return []

    full = oracle_optimum(utilities)
    pruned = oracle_optimum(utilities[:, kept_columns])
    if abs(full - pruned) > _tolerance(utilities):
        return [
            Violation(
                "cbs.weight_not_preserved",
                f"optimal total on the pruned graph ({pruned!r}) differs from "
                f"the full graph ({full!r}) for k={utilities.shape[0]}, "
                f"|B+|={utilities.shape[1]}, kept {kept_columns.size}",
                algorithm=algorithm,
                day=day,
                batch=batch,
            )
        ]
    return []
