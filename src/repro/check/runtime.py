"""The process-wide switchboard for runtime invariant checks.

Checks are **off by default**, exactly like :mod:`repro.obs.telemetry`:
every instrumentation point (the engine's :class:`~repro.check.hook.CheckHook`
attachment, the sampled solver-oracle checks inside
:class:`~repro.core.vfga.ValueFunctionGuidedAssigner`) goes through
:func:`current`, whose disabled fast path is a single global read.

Activate with :func:`enable` / :func:`disable`, scoped with :func:`use`,
per-assigner with ``AssignmentConfig(check=True)``, from the CLI with
``--check``, or for a whole process tree with ``REPRO_CHECK=1`` in the
environment (worker processes inherit the variable, so ``--jobs N`` runs
are covered too).

A :class:`CheckState` carries the policy (``raise`` immediately or
``collect`` for reporting, plus the solver-oracle sampling rate) and the
results (violations found, check counters).  Violations are additionally
booked as ``check.violations`` counters on the active
:mod:`repro.obs` telemetry, so ``--check --telemetry DIR`` runs export
them with everything else.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass

from repro.obs import telemetry as obs

#: Environment variable enabling checks for a whole process (tree).
ENV_FLAG = "REPRO_CHECK"

_MODES = ("raise", "collect")


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough context to reproduce it.

    Attributes:
        invariant: dotted invariant name, e.g. ``"batch.duplicate_broker"``.
        message: human-readable description of what failed.
        algorithm: display name of the matcher under check, when known.
        day / batch: interval coordinates, when the violation is localized.
    """

    invariant: str
    message: str
    algorithm: str | None = None
    day: int | None = None
    batch: int | None = None

    def __str__(self) -> str:
        where = []
        if self.algorithm is not None:
            where.append(self.algorithm)
        if self.day is not None:
            where.append(f"day {self.day}")
        if self.batch is not None:
            where.append(f"batch {self.batch}")
        prefix = f" [{', '.join(where)}]" if where else ""
        return f"{self.invariant}{prefix}: {self.message}"

    def to_dict(self) -> dict:
        """Plain-data form for JSON violation reports."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "algorithm": self.algorithm,
            "day": self.day,
            "batch": self.batch,
        }


class InvariantViolationError(AssertionError):
    """An enabled runtime invariant failed.

    Subclasses :class:`AssertionError` so the property harness and pytest
    both treat it as a check failure rather than an infrastructure error.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class CheckState:
    """Policy and results of one checking session.

    Args:
        mode: ``"raise"`` aborts on the first violation (the ``--check``
            behaviour); ``"collect"`` accumulates violations for reporting
            (the ``repro check`` self-diagnostic).
        solver_sample_every: run the expensive solver-oracle checks
            (KM optimality vs SciPy, CBS preservation) on every N-th solve;
            the first solve is always checked.  Cheap structural invariants
            are never sampled.
    """

    def __init__(self, mode: str = "raise", solver_sample_every: int = 16) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if solver_sample_every < 1:
            raise ValueError(
                f"solver_sample_every must be >= 1, got {solver_sample_every}"
            )
        self.mode = mode
        self.solver_sample_every = solver_sample_every
        self.violations: list[Violation] = []
        self.invariants_checked = 0
        self.solver_checks = 0
        self._solves_seen = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, violation: Violation) -> None:
        """Book one violation: count it, collect it, raise if configured."""
        self.violations.append(violation)
        obs.add("check.violations", invariant=violation.invariant)
        if self.mode == "raise":
            raise InvariantViolationError(violation)

    def record_all(self, violations: list[Violation]) -> None:
        """Book a batch of violations (first one raises in raise mode)."""
        for violation in violations:
            self.record(violation)

    def count(self, checks: int = 1) -> None:
        """Account for ``checks`` structural invariant evaluations."""
        self.invariants_checked += checks

    # ------------------------------------------------------------------
    # Solver-oracle sampling
    # ------------------------------------------------------------------
    def sample_solver(self) -> bool:
        """Whether this solve should get the expensive oracle treatment.

        Deterministic counter-based sampling — never consumes any random
        state, so enabling checks cannot perturb a run's results.
        """
        self._solves_seen += 1
        if (self._solves_seen - 1) % self.solver_sample_every != 0:
            return False
        self.solver_checks += 1
        return True

    @property
    def ok(self) -> bool:
        """Whether no violation has been recorded."""
        return not self.violations


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


#: The active check state of this process (None = disabled, the default).
#: Processes started with REPRO_CHECK=1 come up enabled, which is how the
#: flag reaches ``--jobs N`` worker processes.
_ACTIVE: CheckState | None = CheckState() if _env_enabled() else None


def current() -> CheckState | None:
    """The active :class:`CheckState`, or ``None`` while checks are off."""
    return _ACTIVE


def enabled() -> bool:
    """Whether runtime checks are currently on."""
    return _ACTIVE is not None


def enable(state: CheckState | None = None) -> CheckState:
    """Install (and return) the process-wide check state."""
    global _ACTIVE
    _ACTIVE = state if state is not None else CheckState()
    return _ACTIVE


def disable() -> None:
    """Turn runtime checks off (instrumentation reverts to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


@contextlib.contextmanager
def use(state: CheckState):
    """Scoped activation, restoring whatever was active before."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = state
    try:
        yield state
    finally:
        _ACTIVE = previous
