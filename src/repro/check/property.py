"""A zero-dependency property-testing mini-harness.

``hypothesis``-flavoured but self-contained: :func:`run_property` drives a
seeded generator through ``num_cases`` random cases, runs the check on
each, and on the first failure greedily *shrinks* the counterexample (via
a caller-supplied candidate generator) before reporting it — so failures
come back as the smallest instance the shrinker could reach, with the
exact seed and case index needed to replay them.

Everything is built on ``numpy.random.Generator`` with per-case seeds
derived from one base seed, so a failing case replays bit-for-bit from the
``(seed, index)`` pair alone.  The generators in this module produce the
adversarial utility-matrix regimes the assignment solvers must agree on:
ties, exact zeros, negatives, constants, and degenerate 0-row/0-column
shapes.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

import numpy as np

Case = TypeVar("Case")

#: Default number of random cases per property (the differential suites
#: run at least this many instances per backend pair).
DEFAULT_NUM_CASES = 200

#: Cap on shrink attempts, across all candidates tried.
DEFAULT_MAX_SHRINK_STEPS = 500


class PropertyFailure(AssertionError):
    """A property failed; carries the (shrunk) counterexample and replay info.

    Attributes:
        name: the property's display name.
        counterexample: the smallest failing case the shrinker reached.
        seed / index: replay coordinates — regenerate the *original* failing
            case with ``case_rng(seed, index)``.
        shrink_steps: how many successful shrink steps were applied.
        cause: the check's original failure on the shrunk case.
    """

    def __init__(
        self,
        name: str,
        counterexample,
        seed: int,
        index: int,
        shrink_steps: int,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"property {name!r} failed on case {index} (seed {seed}, "
            f"{shrink_steps} shrink steps): {cause}\n"
            f"counterexample: {counterexample!r}"
        )
        self.name = name
        self.counterexample = counterexample
        self.seed = seed
        self.index = index
        self.shrink_steps = shrink_steps
        self.cause = cause


def case_rng(seed: int, index: int) -> np.random.Generator:
    """The deterministic per-case generator for ``(seed, index)``."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


def run_property(
    check: Callable[[Case], None],
    generate: Callable[[np.random.Generator], Case],
    *,
    num_cases: int = DEFAULT_NUM_CASES,
    seed: int = 0,
    shrink: Callable[[Case], Iterable[Case]] | None = None,
    max_shrink_steps: int = DEFAULT_MAX_SHRINK_STEPS,
    name: str | None = None,
) -> int:
    """Check a property over ``num_cases`` random cases, shrinking failures.

    Args:
        check: raises ``AssertionError`` (or any exception) on a bad case.
        generate: draws one case from a per-case ``Generator``.
        num_cases: how many cases to run.
        seed: base seed; case ``i`` uses ``case_rng(seed, i)``.
        shrink: yields *candidate* smaller cases for a failing case; the
            first candidate that still fails is adopted and shrinking
            restarts from it (greedy descent).  ``None`` disables shrinking.
        max_shrink_steps: total candidate evaluations allowed.
        name: display name in the failure report.

    Returns:
        The number of cases checked (== ``num_cases``) on success.

    Raises:
        PropertyFailure: with the shrunk counterexample on first failure.
    """
    display = name or getattr(check, "__name__", "property")
    for index in range(num_cases):
        case = generate(case_rng(seed, index))
        failure = _fails(check, case)
        if failure is None:
            continue
        if shrink is not None:
            case, failure, steps = _shrink(
                check, case, failure, shrink, max_shrink_steps
            )
        else:
            steps = 0
        raise PropertyFailure(display, case, seed, index, steps, failure)
    return num_cases


def _fails(check: Callable[[Case], None], case: Case) -> BaseException | None:
    """The exception a check raises on a case, or None if it passes."""
    try:
        check(case)
    except BaseException as exc:  # noqa: BLE001 — any escape is a failure
        return exc
    return None


def _shrink(
    check: Callable[[Case], None],
    case: Case,
    failure: BaseException,
    shrink: Callable[[Case], Iterable[Case]],
    max_steps: int,
) -> tuple[Case, BaseException, int]:
    """Greedy descent: adopt the first still-failing candidate, repeat."""
    steps = 0
    budget = max_steps
    improved = True
    while improved and budget > 0:
        improved = False
        for candidate in shrink(case):
            budget -= 1
            candidate_failure = _fails(check, candidate)
            if candidate_failure is not None:
                case, failure = candidate, candidate_failure
                steps += 1
                improved = True
                break
            if budget <= 0:
                break
    return case, failure, steps


# ----------------------------------------------------------------------
# Generators over rectangular utility matrices
# ----------------------------------------------------------------------
def random_shape(
    rng: np.random.Generator,
    max_rows: int = 8,
    max_cols: int = 12,
    degenerate_probability: float = 0.08,
) -> tuple[int, int]:
    """A random (possibly degenerate) matrix shape.

    With probability ``degenerate_probability`` one side is zero — the
    0-row / 0-column edge cases every solver must survive.
    """
    if rng.random() < degenerate_probability:
        if rng.random() < 0.5:
            return 0, int(rng.integers(0, max_cols + 1))
        return int(rng.integers(0, max_rows + 1)), 0
    return int(rng.integers(1, max_rows + 1)), int(rng.integers(1, max_cols + 1))


def random_utilities(
    rng: np.random.Generator,
    shape: tuple[int, int] | None = None,
    allow_negative: bool = True,
) -> np.ndarray:
    """A random utility matrix from one of several adversarial regimes.

    Regimes: smooth uniform values, coarsely quantized values (many exact
    ties), zero-masked values (genuine zero-utility edges), negated values
    (when ``allow_negative``), and constant matrices (everything tied).
    """
    if shape is None:
        shape = random_shape(rng)
    n_rows, n_cols = shape
    regimes = ["uniform", "ties", "zeros", "constant"]
    if allow_negative:
        regimes.append("negative")
    regime = regimes[int(rng.integers(len(regimes)))]
    if regime == "uniform":
        values = rng.uniform(0.0, 10.0, size=shape)
    elif regime == "ties":
        values = rng.integers(0, 4, size=shape).astype(float)
    elif regime == "zeros":
        values = rng.uniform(0.0, 10.0, size=shape)
        values[rng.random(shape) < 0.4] = 0.0
    elif regime == "constant":
        values = np.full(shape, float(rng.integers(0, 3)))
    else:  # negative
        values = rng.uniform(-5.0, 10.0, size=shape)
    return values


def random_utility_row(
    rng: np.random.Generator, max_size: int = 40
) -> np.ndarray:
    """A random 1-D utility row (for top-k selection properties)."""
    size = int(rng.integers(0, max_size + 1))
    return random_utilities(rng, shape=(1, size))[0]


def random_topk_case(
    rng: np.random.Generator, max_rows: int = 6, max_cols: int = 24
) -> tuple[np.ndarray, int]:
    """A ``(matrix, k)`` pair for the fast-vs-quickselect top-k property.

    ``k`` ranges past the column count so the all-columns and empty edges
    are exercised; the matrix regimes include heavy ties (the case where
    an arbitrary-tie-break ``argpartition`` would diverge from the
    reference).
    """
    n_rows = int(rng.integers(0, max_rows + 1))
    n_cols = int(rng.integers(0, max_cols + 1))
    weights = random_utilities(rng, shape=(n_rows, n_cols))
    k = int(rng.integers(0, n_cols + 3))
    return weights, k


def random_mlp_case(
    rng: np.random.Generator,
    max_hidden_layers: int = 3,
    max_width: int = 24,
    max_batch: int = 12,
) -> tuple[tuple[int, ...], np.ndarray, int]:
    """A ``(layer_sizes, inputs, net_seed)`` batched-scoring case.

    Scalar-output MLPs of varying depth/width with inputs spanning
    magnitudes (so dead-ReLU rows and large activations both occur).
    """
    input_dim = int(rng.integers(1, 12))
    hidden = tuple(
        int(rng.integers(1, max_width + 1))
        for _ in range(int(rng.integers(1, max_hidden_layers + 1)))
    )
    layer_sizes = (input_dim, *hidden, 1)
    batch = int(rng.integers(1, max_batch + 1))
    scale = 10.0 ** rng.integers(-2, 3)
    inputs = rng.normal(0.0, scale, size=(batch, input_dim))
    return layer_sizes, inputs, int(rng.integers(0, 2**31))


def random_perturbation_sequence(
    rng: np.random.Generator,
    max_rows: int = 8,
    max_cols: int = 12,
    max_steps: int = 6,
) -> list[np.ndarray]:
    """A sequence of related utility matrices for warm-start properties.

    Models the batch-to-batch evolution an incremental solver faces: the
    first matrix is arbitrary, and each later step applies one mutation —
    ``k``-row deltas (random rows or the trailing block the value
    refinement typically touches), identical repeats, full redraws, broker
    columns added or removed, tie storms (coarse quantization creating
    mass ties), and occasional full reshapes including degenerate 0-row /
    0-column shapes.
    """
    n_rows = int(rng.integers(1, max_rows + 1))
    n_cols = int(rng.integers(1, max_cols + 1))
    current = random_utilities(rng, shape=(n_rows, n_cols))
    sequence = [current]
    mutations = (
        "delta_rows",
        "delta_tail",
        "repeat",
        "redraw",
        "add_broker",
        "drop_broker",
        "tie_storm",
        "reshape",
    )
    for _ in range(int(rng.integers(1, max_steps + 1))):
        n_rows, n_cols = current.shape
        mutation = mutations[int(rng.integers(len(mutations)))]
        if mutation in ("delta_rows", "delta_tail") and n_rows == 0:
            mutation = "repeat"
        if mutation == "drop_broker" and n_cols <= 1:
            mutation = "add_broker"
        if mutation == "delta_rows":
            k = int(rng.integers(1, n_rows + 1))
            rows = rng.choice(n_rows, size=k, replace=False)
            current = current.copy()
            current[rows] = random_utilities(rng, shape=(k, n_cols))
        elif mutation == "delta_tail":
            k = int(rng.integers(1, n_rows + 1))
            current = current.copy()
            current[n_rows - k:] = random_utilities(rng, shape=(k, n_cols))
        elif mutation == "repeat":
            current = current.copy()
        elif mutation == "redraw":
            current = random_utilities(rng, shape=(n_rows, n_cols))
        elif mutation == "add_broker":
            column = random_utilities(rng, shape=(n_rows, 1))
            current = np.hstack([current, column])
        elif mutation == "drop_broker":
            column = int(rng.integers(n_cols))
            current = np.delete(current, column, axis=1)
        elif mutation == "tie_storm":
            current = np.round(current)
        else:  # reshape
            current = random_utilities(rng, shape=random_shape(rng))
        sequence.append(current)
    return sequence


def shrink_sequence(sequence: list[np.ndarray]):
    """Shrink candidates for a failing perturbation sequence.

    Yields tail truncations first (warm-start failures usually need only
    the last few steps), then each single-step drop, then per-matrix
    simplifications of the final step via :func:`shrink_matrix`.
    """
    if len(sequence) > 2:
        yield sequence[-2:]
    for index in range(len(sequence)):
        if len(sequence) > 1:
            yield sequence[:index] + sequence[index + 1:]
    if sequence and sequence[-1].size:
        for candidate in shrink_matrix(sequence[-1]):
            yield sequence[:-1] + [candidate]


def shrink_matrix(weights: np.ndarray):
    """Shrink candidates for a failing matrix: fewer rows/cols, simpler values.

    Yields, in order of aggressiveness: each single-row drop, each
    single-column drop, zeroing each nonzero entry, and rounding every
    entry to one decimal (one global candidate).
    """
    weights = np.asarray(weights, dtype=float)
    n_rows, n_cols = weights.shape
    for row in range(n_rows):
        yield np.delete(weights, row, axis=0)
    for col in range(n_cols):
        yield np.delete(weights, col, axis=1)
    for row in range(n_rows):
        for col in range(n_cols):
            if weights[row, col] != 0.0:
                candidate = weights.copy()
                candidate[row, col] = 0.0
                yield candidate
    rounded = np.round(weights, 1)
    if not np.array_equal(rounded, weights):
        yield rounded
