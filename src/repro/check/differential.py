"""Differential oracles: independent implementations must agree.

Each ``assert_*`` function cross-validates two or more routes to the same
answer on one concrete instance and raises ``AssertionError`` with a
replayable description on disagreement.  They are the check functions the
:mod:`repro.check.property` harness drives over randomized instances, and
they are equally usable on a single hand-built instance in a regression
test.

The agreements checked:

* ``repro`` vs ``scipy`` (vs ``auction`` / min-cost-flow where their
  preconditions hold): equal optimal totals, structurally valid matchings.
  Totals — not pair sets — are compared: optima are frequently non-unique
  (ties), and the solvers legitimately differ on zero-weight pairs (the
  auction backend drops them; the Hungarian backend reports them).
* ``pad_square=True`` vs the rectangular solve: Sec. VI-B's dummy-vertex
  squaring is a pure running-time experiment and must not change results.
* CBS pruning vs the unpruned instance (Theorem 2): equal optimal totals.
* the warm-started incremental KM solver vs a fresh cold solve, over a
  whole perturbation sequence: *bit-identical* pairs and totals at every
  step (not merely equal optima — the incremental path promises the exact
  reference result), with every step additionally cross-validated across
  all four backends.
* ``candidate_broker_selection`` vs brute-force ``np.sort`` top-k.
* the ``argpartition`` fast kernel vs the quickselect reference: exactly
  equal per-row ``Top_k`` sets and batch unions (see
  :func:`repro.core.selection.topk_selection_mask`).
* batched MLP scoring (``param_gradients`` + vectorized exploration
  bonus) vs the per-sample reference path, to floating-point round-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import (
    candidate_broker_selection,
    select_candidate_brokers,
    topk_selection_mask,
)
from repro.matching.hungarian import solve_assignment
from repro.matching.validation import assert_valid_matching

#: Base absolute tolerance when comparing exact solvers.
EXACT_ATOL = 1e-8

#: The auction backend's advertised relative optimality tolerance.
AUCTION_RTOL = 1e-9


def _scale(weights: np.ndarray) -> float:
    return float(np.max(np.abs(weights))) if weights.size else 1.0


def assert_backends_agree(weights: np.ndarray) -> None:
    """All applicable matching backends agree on the optimal total weight.

    ``repro`` and ``scipy`` always run; ``auction`` and the min-cost-flow
    reduction additionally run when the instance is non-negative (their
    documented scope).  Every result is structurally validated against the
    weight matrix.
    """
    weights = np.asarray(weights, dtype=float)
    atol = EXACT_ATOL * max(1.0, _scale(weights))

    reference = solve_assignment(weights, maximize=True, backend="scipy")
    assert_valid_matching(reference, weights, atol=atol)
    totals = {"scipy": reference.total_weight}

    repro = solve_assignment(weights, maximize=True, backend="repro")
    assert_valid_matching(repro, weights, atol=atol)
    totals["repro"] = repro.total_weight

    non_negative = weights.size == 0 or float(weights.min()) >= 0.0
    if non_negative:
        auction = solve_assignment(weights, maximize=True, backend="auction")
        assert_valid_matching(auction, weights, atol=atol)
        totals["auction"] = auction.total_weight
        from repro.matching.flow import min_cost_flow_assignment

        flow = min_cost_flow_assignment(weights)
        assert_valid_matching(flow, weights, atol=atol)
        totals["flow"] = flow.total_weight

    reference_total = totals["scipy"]
    auction_atol = atol + AUCTION_RTOL * _scale(weights) * max(weights.shape[0], 1)
    for backend, total in totals.items():
        tolerance = auction_atol if backend == "auction" else atol
        if abs(total - reference_total) > tolerance:
            raise AssertionError(
                f"backend {backend!r} total {total!r} != scipy total "
                f"{reference_total!r} on shape {weights.shape}:\n{weights!r}"
            )


def assert_incremental_matches_cold(sequence) -> None:
    """Warm-started solves equal cold solves, bitwise, along a sequence.

    Drives one :class:`repro.matching.incremental.IncrementalKMSolver`
    through the matrices in order — so hits, prefix resumptions and cold
    fallbacks all occur — and demands the *exact* cold-reference result at
    every step: identical pair lists (same tie resolution) and bitwise
    equal totals.  Equal-value-but-different matchings are a failure here;
    the incremental solver's contract is bit-identity, which is what keeps
    seeded runs reproducible across kernel modes.  Each step's instance is
    also pushed through :func:`assert_backends_agree`, cross-validating
    the shared optimum across all four backends.
    """
    from repro.matching.incremental import IncrementalKMSolver

    solver = IncrementalKMSolver()
    for step, weights in enumerate(sequence):
        weights = np.asarray(weights, dtype=float)
        warm = solver.solve(weights, maximize=True)
        cold = solve_assignment(weights, maximize=True, backend="repro")
        if warm.pairs != cold.pairs:
            raise AssertionError(
                f"incremental solve diverged from cold solve at step {step} "
                f"(shape {weights.shape}, stats {solver.stats}): warm pairs "
                f"{warm.pairs!r} != cold pairs {cold.pairs!r}\n{weights!r}"
            )
        if warm.total_weight != cold.total_weight:
            raise AssertionError(
                f"incremental total is not bit-identical at step {step} "
                f"(shape {weights.shape}, stats {solver.stats}): "
                f"{warm.total_weight!r} != {cold.total_weight!r}\n{weights!r}"
            )
        atol = EXACT_ATOL * max(1.0, _scale(weights))
        assert_valid_matching(warm, weights, atol=atol)
        assert_backends_agree(weights)


def assert_pad_square_agrees(weights: np.ndarray, backend: str = "repro") -> None:
    """Sec. VI-B square padding returns the same total as the rectangular solve."""
    weights = np.asarray(weights, dtype=float)
    atol = EXACT_ATOL * max(1.0, _scale(weights))
    rectangular = solve_assignment(weights, maximize=True, backend=backend)
    squared = solve_assignment(
        weights, maximize=True, backend=backend, pad_square=True
    )
    assert_valid_matching(squared, weights, atol=atol)
    if abs(rectangular.total_weight - squared.total_weight) > atol:
        raise AssertionError(
            f"pad_square changed the optimal total on shape {weights.shape}: "
            f"rectangular {rectangular.total_weight!r} vs "
            f"square {squared.total_weight!r}\n{weights!r}"
        )


def assert_cbs_preserves(weights: np.ndarray, k: int | None = None, seed: int = 0) -> None:
    """Theorem 2: pruning columns to the CBS candidate union keeps the optimum.

    Args:
        weights: ``(n_rows, n_cols)`` utility matrix.
        k: per-row candidate size (defaults to ``n_rows``, Corollary 1).
        seed: CBS pivot randomness (pruning is randomized; the theorem must
            hold for every pivot sequence).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] == 0 or weights.shape[1] == 0:
        return
    k = weights.shape[0] if k is None else k
    columns = select_candidate_brokers(weights, k, np.random.default_rng(seed))
    full = solve_assignment(weights, maximize=True, backend="scipy")
    pruned = solve_assignment(weights[:, columns], maximize=True, backend="scipy")
    atol = EXACT_ATOL * max(1.0, _scale(weights))
    if pruned.total_weight < full.total_weight - atol:
        raise AssertionError(
            f"CBS pruning lost weight on shape {weights.shape}: kept "
            f"{columns.size}/{weights.shape[1]} columns, optimum dropped "
            f"{full.total_weight!r} -> {pruned.total_weight!r}\n{weights!r}"
        )


def assert_topk_matches_bruteforce(row: np.ndarray, k: int, seed: int = 0) -> None:
    """``candidate_broker_selection`` returns exactly a top-``k`` value multiset."""
    row = np.asarray(row, dtype=float)
    selected = candidate_broker_selection(row, k, np.random.default_rng(seed))
    expected_size = min(max(k, 0), row.size)
    if selected.size != expected_size:
        raise AssertionError(
            f"top-{k} of {row.size} values returned {selected.size} indices: "
            f"{selected!r} on {row!r}"
        )
    if np.unique(selected).size != selected.size:
        raise AssertionError(f"duplicate indices in top-{k} selection: {selected!r}")
    got = np.sort(row[selected])[::-1]
    brute = np.sort(row)[::-1][:expected_size]
    if not np.array_equal(got, brute):
        raise AssertionError(
            f"top-{k} values {got!r} differ from brute force {brute!r} on {row!r}"
        )


def assert_fast_topk_matches_quickselect(
    weights: np.ndarray, k: int, seed: int = 0
) -> None:
    """The ``argpartition`` kernel returns quickselect's sets *exactly*.

    Per row, the fast mask must equal the quickselect index set (not just
    a valid ``Top_k``: engine bit-identity across kernel modes rests on
    the sets being the same), and the two
    :func:`~repro.core.selection.select_candidate_brokers` kernels must
    return the identical batch union.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim == 1:
        weights = weights[None, :]
    mask = topk_selection_mask(weights, k)
    rng = np.random.default_rng(seed)
    for index, row in enumerate(weights):
        fast = np.flatnonzero(mask[index])
        reference = np.sort(candidate_broker_selection(row, k, rng))
        if not np.array_equal(fast, reference):
            raise AssertionError(
                f"fast top-{k} set {fast!r} != quickselect set {reference!r} "
                f"on row {index} of shape {weights.shape}:\n{row!r}"
            )
    fast_union = select_candidate_brokers(weights, k, rng, method="argpartition")
    reference_union = select_candidate_brokers(weights, k, rng, method="quickselect")
    if not np.array_equal(fast_union, reference_union):
        raise AssertionError(
            f"fast union {fast_union!r} != quickselect union {reference_union!r} "
            f"for k={k} on shape {weights.shape}:\n{weights!r}"
        )


#: Relative tolerance for batched-vs-per-sample MLP agreement.  Batched
#: GEMMs may associate reductions differently than their per-row
#: counterparts, so agreement is to round-off, not to the bit.
BATCHED_MLP_RTOL = 1e-9
BATCHED_MLP_ATOL = 1e-12


def assert_batched_scoring_matches(case: tuple) -> None:
    """Batched MLP gradients/bonuses/scores match the per-sample path.

    Args:
        case: ``(layer_sizes, inputs, net_seed)`` — an MLP architecture
            (scalar output), a ``(batch, input_dim)`` design matrix, and
            the network-initialization seed.
    """
    from repro.nn import MLP

    layer_sizes, inputs, net_seed = case
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    network = MLP(layer_sizes, np.random.default_rng(net_seed))
    batched = network.param_gradients(inputs)
    reference = np.stack([network.param_gradient(row) for row in inputs])
    if batched.shape != reference.shape:
        raise AssertionError(
            f"batched gradient shape {batched.shape} != per-sample shape "
            f"{reference.shape} for layers {layer_sizes}"
        )
    if not np.allclose(batched, reference, rtol=BATCHED_MLP_RTOL, atol=BATCHED_MLP_ATOL):
        worst = float(np.max(np.abs(batched - reference)))
        raise AssertionError(
            f"batched param_gradients deviates from per-sample path by "
            f"{worst!r} on layers {layer_sizes}, batch {inputs.shape}"
        )
    # The diagonal-covariance bonus must agree too (it is the quantity the
    # UCB scores actually consume).
    diag = np.abs(np.random.default_rng(net_seed + 1).normal(size=network.num_params)) + 0.5
    batched_bonus = np.sqrt(np.maximum((batched**2 / diag).sum(axis=1), 0.0))
    reference_bonus = np.array(
        [np.sqrt(max(float(np.sum(row**2 / diag)), 0.0)) for row in reference]
    )
    if not np.allclose(
        batched_bonus, reference_bonus, rtol=BATCHED_MLP_RTOL, atol=BATCHED_MLP_ATOL
    ):
        raise AssertionError(
            f"batched exploration bonus deviates from per-sample path on "
            f"layers {layer_sizes}: {batched_bonus!r} vs {reference_bonus!r}"
        )
