"""Differential oracles: independent implementations must agree.

Each ``assert_*`` function cross-validates two or more routes to the same
answer on one concrete instance and raises ``AssertionError`` with a
replayable description on disagreement.  They are the check functions the
:mod:`repro.check.property` harness drives over randomized instances, and
they are equally usable on a single hand-built instance in a regression
test.

The agreements checked:

* ``repro`` vs ``scipy`` (vs ``auction`` / min-cost-flow where their
  preconditions hold): equal optimal totals, structurally valid matchings.
  Totals — not pair sets — are compared: optima are frequently non-unique
  (ties), and the solvers legitimately differ on zero-weight pairs (the
  auction backend drops them; the Hungarian backend reports them).
* ``pad_square=True`` vs the rectangular solve: Sec. VI-B's dummy-vertex
  squaring is a pure running-time experiment and must not change results.
* CBS pruning vs the unpruned instance (Theorem 2): equal optimal totals.
* ``candidate_broker_selection`` vs brute-force ``np.sort`` top-k.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import candidate_broker_selection
from repro.matching.hungarian import solve_assignment
from repro.matching.validation import assert_valid_matching

#: Base absolute tolerance when comparing exact solvers.
EXACT_ATOL = 1e-8

#: The auction backend's advertised relative optimality tolerance.
AUCTION_RTOL = 1e-9


def _scale(weights: np.ndarray) -> float:
    return float(np.max(np.abs(weights))) if weights.size else 1.0


def assert_backends_agree(weights: np.ndarray) -> None:
    """All applicable matching backends agree on the optimal total weight.

    ``repro`` and ``scipy`` always run; ``auction`` and the min-cost-flow
    reduction additionally run when the instance is non-negative (their
    documented scope).  Every result is structurally validated against the
    weight matrix.
    """
    weights = np.asarray(weights, dtype=float)
    atol = EXACT_ATOL * max(1.0, _scale(weights))

    reference = solve_assignment(weights, maximize=True, backend="scipy")
    assert_valid_matching(reference, weights, atol=atol)
    totals = {"scipy": reference.total_weight}

    repro = solve_assignment(weights, maximize=True, backend="repro")
    assert_valid_matching(repro, weights, atol=atol)
    totals["repro"] = repro.total_weight

    non_negative = weights.size == 0 or float(weights.min()) >= 0.0
    if non_negative:
        auction = solve_assignment(weights, maximize=True, backend="auction")
        assert_valid_matching(auction, weights, atol=atol)
        totals["auction"] = auction.total_weight
        from repro.matching.flow import min_cost_flow_assignment

        flow = min_cost_flow_assignment(weights)
        assert_valid_matching(flow, weights, atol=atol)
        totals["flow"] = flow.total_weight

    reference_total = totals["scipy"]
    auction_atol = atol + AUCTION_RTOL * _scale(weights) * max(weights.shape[0], 1)
    for backend, total in totals.items():
        tolerance = auction_atol if backend == "auction" else atol
        if abs(total - reference_total) > tolerance:
            raise AssertionError(
                f"backend {backend!r} total {total!r} != scipy total "
                f"{reference_total!r} on shape {weights.shape}:\n{weights!r}"
            )


def assert_pad_square_agrees(weights: np.ndarray, backend: str = "repro") -> None:
    """Sec. VI-B square padding returns the same total as the rectangular solve."""
    weights = np.asarray(weights, dtype=float)
    atol = EXACT_ATOL * max(1.0, _scale(weights))
    rectangular = solve_assignment(weights, maximize=True, backend=backend)
    squared = solve_assignment(
        weights, maximize=True, backend=backend, pad_square=True
    )
    assert_valid_matching(squared, weights, atol=atol)
    if abs(rectangular.total_weight - squared.total_weight) > atol:
        raise AssertionError(
            f"pad_square changed the optimal total on shape {weights.shape}: "
            f"rectangular {rectangular.total_weight!r} vs "
            f"square {squared.total_weight!r}\n{weights!r}"
        )


def assert_cbs_preserves(weights: np.ndarray, k: int | None = None, seed: int = 0) -> None:
    """Theorem 2: pruning columns to the CBS candidate union keeps the optimum.

    Args:
        weights: ``(n_rows, n_cols)`` utility matrix.
        k: per-row candidate size (defaults to ``n_rows``, Corollary 1).
        seed: CBS pivot randomness (pruning is randomized; the theorem must
            hold for every pivot sequence).
    """
    from repro.core.selection import select_candidate_brokers

    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] == 0 or weights.shape[1] == 0:
        return
    k = weights.shape[0] if k is None else k
    columns = select_candidate_brokers(weights, k, np.random.default_rng(seed))
    full = solve_assignment(weights, maximize=True, backend="scipy")
    pruned = solve_assignment(weights[:, columns], maximize=True, backend="scipy")
    atol = EXACT_ATOL * max(1.0, _scale(weights))
    if pruned.total_weight < full.total_weight - atol:
        raise AssertionError(
            f"CBS pruning lost weight on shape {weights.shape}: kept "
            f"{columns.size}/{weights.shape[1]} columns, optimum dropped "
            f"{full.total_weight!r} -> {pruned.total_weight!r}\n{weights!r}"
        )


def assert_topk_matches_bruteforce(row: np.ndarray, k: int, seed: int = 0) -> None:
    """``candidate_broker_selection`` returns exactly a top-``k`` value multiset."""
    row = np.asarray(row, dtype=float)
    selected = candidate_broker_selection(row, k, np.random.default_rng(seed))
    expected_size = min(max(k, 0), row.size)
    if selected.size != expected_size:
        raise AssertionError(
            f"top-{k} of {row.size} values returned {selected.size} indices: "
            f"{selected!r} on {row!r}"
        )
    if np.unique(selected).size != selected.size:
        raise AssertionError(f"duplicate indices in top-{k} selection: {selected!r}")
    got = np.sort(row[selected])[::-1]
    brute = np.sort(row)[::-1][:expected_size]
    if not np.array_equal(got, brute):
        raise AssertionError(
            f"top-{k} values {got!r} differ from brute force {brute!r} on {row!r}"
        )
