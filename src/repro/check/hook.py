"""CheckHook: runtime invariant enforcement wired into the day-loop engine.

:class:`~repro.engine.loop.DayLoopEngine` attaches this hook automatically
whenever :func:`repro.check.runtime.current` is active (mirroring the
telemetry auto-attach), so ``--check`` / ``REPRO_CHECK=1`` runs get
per-batch feasibility and end-of-day accounting checks on every entry
point without caller wiring.

The hook is an *observer*: it never mutates the platform, the matcher, or
any event payload, and it consumes no randomness — enabling checks cannot
change a run's assignments (the bit-identical guarantee the test suite
enforces).  The matcher's internal assigner, when present, is discovered
by duck typing (``matcher.assigner`` exposing ``capacities`` /
``workloads``) rather than by importing concrete matcher classes.
"""

from __future__ import annotations

import numpy as np

from repro.check import invariants
from repro.check.runtime import CheckState, current
from repro.engine.hooks import RunHook
from repro.engine.loop import BatchAssignedEvent, DayEndEvent, DayStartEvent, RunContext
from repro.obs import telemetry as obs


def _duck_assigner(matcher) -> object | None:
    """The matcher's capacity-tracking assigner, when it exposes one."""
    assigner = getattr(matcher, "assigner", None)
    if assigner is None:
        return None
    if hasattr(assigner, "capacities") and hasattr(assigner, "workloads"):
        return assigner
    return None


class CheckHook(RunHook):
    """Run the engine-level invariants against every lifecycle event.

    Args:
        state: where violations are booked; defaults to the process-wide
            active state at run start (falling back to a fresh collect-mode
            state, for direct construction in tests).
    """

    def __init__(self, state: CheckState | None = None) -> None:
        self._state = state

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_run_start(self, context: RunContext) -> None:
        self.state = self._state or current() or CheckState(mode="collect")
        self._algorithm = getattr(context.matcher, "name", None)
        self._one_to_one = bool(getattr(context.matcher, "one_to_one", False))
        self._assigner = _duck_assigner(context.matcher)
        # Appeals re-queue some served requests, so the platform's realized
        # workloads legitimately diverge from the booked pairs; skip the
        # outcome comparison in that regime.
        self._appeals = float(getattr(context.platform, "appeal_rate", 0.0)) > 0.0
        self._booked = np.zeros(context.num_brokers, dtype=int)
        self._capacities: np.ndarray | None = None

    def on_day_start(self, event: DayStartEvent) -> None:
        self._booked[:] = 0
        assigner = self._assigner
        # Snapshot the day's capacities: capacity feasibility is judged
        # against what the assigner installed at begin_day.
        self._capacities = (
            np.array(assigner.capacities, dtype=float, copy=True)
            if assigner is not None
            else None
        )

    def on_batch_assigned(self, event: BatchAssignedEvent) -> None:
        state = self.state
        with obs.span("check.batch"):
            state.record_all(
                invariants.check_batch_assignment(
                    event.assignment,
                    event.request_ids,
                    event.utilities,
                    one_to_one=self._one_to_one,
                    algorithm=self._algorithm,
                )
            )
            state.count()
            if self._capacities is not None:
                state.record_all(
                    invariants.check_capacity_feasibility(
                        event.assignment,
                        self._capacities,
                        self._booked,
                        algorithm=self._algorithm,
                    )
                )
                state.count()
        # Book the batch after checking it (checks see pre-batch state).
        for pair in event.assignment.pairs:
            if 0 <= pair.broker_id < self._booked.size:
                self._booked[pair.broker_id] += 1

    def on_day_end(self, event: DayEndEvent) -> None:
        state = self.state
        assigner = self._assigner
        with obs.span("check.day"):
            state.record_all(
                invariants.check_day_accounting(
                    event.day,
                    self._booked,
                    outcome_workloads=(
                        None if self._appeals else event.outcome.workloads
                    ),
                    assigner_workloads=(
                        assigner.workloads if assigner is not None else None
                    ),
                    algorithm=self._algorithm,
                )
            )
            state.count()
