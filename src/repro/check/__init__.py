"""repro.check — opt-in runtime invariants and differential testing.

Layers (each usable on its own):

* :mod:`repro.check.runtime` — the process-wide switchboard
  (:func:`enable` / :func:`disable` / ``REPRO_CHECK=1``), violation types
  and the :class:`CheckState` policy object.
* :mod:`repro.check.invariants` — pure invariant functions over batch
  assignments, capacity state, day accounting and solver results.
* :mod:`repro.check.hook` — the engine-attached :class:`CheckHook`
  (auto-wired by :class:`~repro.engine.loop.DayLoopEngine` while checks
  are enabled).
* :mod:`repro.check.property` — the zero-dependency property-testing
  harness (seeded generators + greedy shrinking).
* :mod:`repro.check.differential` — cross-implementation oracles
  (``repro``/``scipy``/``auction``/flow, CBS vs brute force, padding).
* :mod:`repro.check.selfcheck` — the ``repro check`` CLI diagnostic.

``CheckHook`` and the selfcheck entry points are exported lazily:
:mod:`repro.check.hook` imports the engine, and eager re-export would make
``import repro.check`` (which :mod:`repro.core.vfga` performs) circular.
"""

from repro.check.runtime import (
    ENV_FLAG,
    CheckState,
    InvariantViolationError,
    Violation,
    current,
    disable,
    enable,
    enabled,
    use,
)

__all__ = [
    "ENV_FLAG",
    "CheckState",
    "InvariantViolationError",
    "Violation",
    "current",
    "disable",
    "enable",
    "enabled",
    "use",
    "CheckHook",
    "SelfCheckReport",
    "run_self_check",
    "check_resume_equivalence",
    "run_resume_suite",
    "check_serving_equivalence",
    "run_serving_suite",
]

_LAZY = {
    "CheckHook": ("repro.check.hook", "CheckHook"),
    "SelfCheckReport": ("repro.check.selfcheck", "SelfCheckReport"),
    "run_self_check": ("repro.check.selfcheck", "run_self_check"),
    "check_resume_equivalence": ("repro.check.resume", "check_resume_equivalence"),
    "run_resume_suite": ("repro.check.resume", "run_resume_suite"),
    "check_serving_equivalence": ("repro.check.serving", "check_serving_equivalence"),
    "run_serving_suite": ("repro.check.serving", "run_serving_suite"),
}


def __getattr__(name: str):
    """PEP 562 lazy exports for the engine-dependent pieces."""
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
