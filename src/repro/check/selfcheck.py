"""The ``repro check`` self-diagnostic.

Runs the whole correctness layer against a small simulated city:

1. **Invariant phase** — for each requested algorithm, drive a full day
   loop with checks active in *collect* mode, so the engine-attached
   :class:`~repro.check.hook.CheckHook` exercises batch feasibility,
   capacity feasibility and day accounting, and the assigner's sampled
   solver-oracle spot checks (KM optimality, CBS preservation) run at an
   aggressive sampling rate.
2. **Property phase** — the differential suites of
   :mod:`repro.check.differential` over randomized instances: backend
   agreement, square-padding agreement, CBS preservation, warm-started
   incremental KM vs cold solves over perturbation sequences, and top-k
   selection vs brute force.

Everything found comes back in one :class:`SelfCheckReport`; the CLI
renders it and exits nonzero when any violation survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.check import differential, property as prop, runtime
from repro.check.runtime import CheckState, Violation
from repro.obs import telemetry as obs

#: Algorithms exercised by default: the KM-exactness claim (KM), the full
#: LACB stack (value function + capacity bandit), and the CBS-accelerated
#: variant whose pruning Theorem 2 guarantees lossless.
DEFAULT_ALGORITHMS = ("KM", "LACB", "LACB-Opt")


@dataclass
class SelfCheckReport:
    """Everything the self-diagnostic found.

    Attributes:
        violations: all invariant/property violations, in discovery order.
        invariants_checked: structural invariant evaluations performed.
        solver_checks: sampled solver-oracle spot checks performed.
        property_cases: randomized property cases run (across all suites).
        algorithms: algorithm names the invariant phase drove.
    """

    violations: list[Violation] = field(default_factory=list)
    invariants_checked: int = 0
    solver_checks: int = 0
    property_cases: int = 0
    resume_cases: int = 0
    algorithms: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the diagnostic found nothing wrong."""
        return not self.violations

    def to_dict(self) -> dict:
        """Plain-data form for the JSON violation report artifact."""
        return {
            "ok": self.ok,
            "invariants_checked": self.invariants_checked,
            "solver_checks": self.solver_checks,
            "property_cases": self.property_cases,
            "resume_cases": self.resume_cases,
            "algorithms": list(self.algorithms),
            "violations": [violation.to_dict() for violation in self.violations],
        }


def run_self_check(
    num_brokers: int = 25,
    num_requests: int = 250,
    num_days: int = 3,
    seed: int = 7,
    instance_seed: int = 1,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    property_cases: int = 200,
    property_seed: int = 0,
    solver_sample_every: int = 4,
) -> SelfCheckReport:
    """Run the full diagnostic; see the module docstring for the phases.

    Args:
        num_brokers / num_requests / num_days: size of the simulated city.
        seed: matcher-private randomness seed.
        instance_seed: city instance seed.
        algorithms: algorithm names for the invariant phase.
        property_cases: randomized cases per differential property.
        property_seed: base seed of the property harness.
        solver_sample_every: solver-oracle sampling rate during the
            invariant phase (1 = check every solve).
    """
    from repro.algorithms import make_matcher
    from repro.engine.loop import DayLoopEngine
    from repro.simulation.datasets import SyntheticConfig, generate_city

    report = SelfCheckReport(algorithms=tuple(algorithms))
    state = CheckState(mode="collect", solver_sample_every=solver_sample_every)
    config = SyntheticConfig(
        num_brokers=num_brokers,
        num_requests=num_requests,
        num_days=num_days,
        seed=instance_seed,
    )
    with runtime.use(state):
        platform = generate_city(config)
        engine = DayLoopEngine()
        for name in algorithms:
            with obs.span("check.selfcheck_run", algorithm=name):
                matcher = make_matcher(name, platform, seed=seed)
                engine.run(platform, matcher)
    report.violations.extend(state.violations)
    report.invariants_checked = state.invariants_checked
    report.solver_checks = state.solver_checks

    report.property_cases = _run_property_phase(
        report.violations, num_cases=property_cases, seed=property_seed
    )
    obs.set_gauge("check.selfcheck_violations", len(report.violations))
    return report


def _run_property_phase(
    violations: list[Violation], num_cases: int, seed: int
) -> int:
    """Drive every differential suite; convert failures into violations."""
    suites = [
        (
            "property.backends_agree",
            differential.assert_backends_agree,
            prop.random_utilities,
            prop.shrink_matrix,
        ),
        (
            "property.pad_square_agrees",
            differential.assert_pad_square_agrees,
            lambda rng: prop.random_utilities(rng, allow_negative=False),
            prop.shrink_matrix,
        ),
        (
            "property.cbs_preserves",
            differential.assert_cbs_preserves,
            lambda rng: prop.random_utilities(rng, allow_negative=False),
            prop.shrink_matrix,
        ),
        (
            "property.incremental_matches_cold",
            differential.assert_incremental_matches_cold,
            prop.random_perturbation_sequence,
            prop.shrink_sequence,
        ),
        (
            "property.topk_bruteforce",
            lambda case: differential.assert_topk_matches_bruteforce(*case),
            lambda rng: (prop.random_utility_row(rng), int(rng.integers(0, 12))),
            None,
        ),
        (
            "property.fast_topk_matches_quickselect",
            lambda case: differential.assert_fast_topk_matches_quickselect(*case),
            prop.random_topk_case,
            None,
        ),
        (
            "property.batched_scoring_matches",
            differential.assert_batched_scoring_matches,
            prop.random_mlp_case,
            None,
        ),
    ]
    cases_run = 0
    for invariant, check, generate, shrink in suites:
        with obs.span(invariant):
            try:
                cases_run += prop.run_property(
                    check,
                    generate,
                    num_cases=num_cases,
                    seed=seed,
                    shrink=shrink,
                    name=invariant,
                )
            except prop.PropertyFailure as failure:
                obs.add("check.violations", invariant=invariant)
                violations.append(Violation(invariant, str(failure)))
                cases_run += failure.index + 1
    return cases_run
