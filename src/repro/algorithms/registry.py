"""Factory for the compared algorithms, keyed by the paper's names."""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.algorithms.ctopk import ConstrainedTopKRecommender
from repro.algorithms.greedy_batch import GreedyBatchMatcher
from repro.algorithms.km_batch import BatchKMMatcher
from repro.algorithms.lacb import LACBMatcher
from repro.algorithms.neural_assign import NeuralUCBAssignment
from repro.algorithms.random_rec import RandomizedRecommender
from repro.algorithms.topk import TopKRecommender
from repro.core.config import AssignmentConfig, BanditConfig, LACBConfig
from repro.simulation.platform import RealEstatePlatform

#: Names accepted by :func:`make_matcher`, in the paper's reporting order
#: ("Greedy" is an extra baseline from the online-assignment literature).
ALGORITHM_NAMES = (
    "Top-1",
    "Top-3",
    "RR",
    "Greedy",
    "KM",
    "CTop-1",
    "CTop-3",
    "AN",
    "LACB",
    "LACB-Opt",
)

#: Default city-level empirical capacity for CTop-K on synthetic datasets
#: (the real-like cities override it with their Table IV values 45/55/40).
#: Chosen the way the paper describes — from the knee of the city-level
#: sign-up-vs-workload curve of the synthetic population (Fig. 2 analogue).
DEFAULT_EMPIRICAL_CAPACITY = 28.0


def make_matcher(
    name: str,
    platform: RealEstatePlatform,
    seed: int = 0,
    empirical_capacity: float | None = None,
    bandit_config: BanditConfig | None = None,
    lacb_config: LACBConfig | None = None,
    backend: str = "repro",
) -> Matcher:
    """Build a compared algorithm with paper-default settings.

    Args:
        name: one of :data:`ALGORITHM_NAMES`.
        platform: the environment the matcher will run against (supplies
            pool size and context dimension).
        seed: matcher-private randomness seed.
        empirical_capacity: CTop-K's city-level capacity (Table IV values
            for the real-like cities; 40 by default).
        bandit_config: override the AN / LACB bandit settings.
        lacb_config: override the full LACB configuration.
        backend: matching backend for the KM-based algorithms.
    """
    rng = np.random.default_rng(seed)
    capacity = (
        DEFAULT_EMPIRICAL_CAPACITY if empirical_capacity is None else empirical_capacity
    )
    if name == "Top-1":
        return TopKRecommender(1, rng)
    if name == "Top-3":
        return TopKRecommender(3, rng)
    if name == "RR":
        return RandomizedRecommender(platform.num_brokers, rng)
    if name == "Greedy":
        return GreedyBatchMatcher()
    if name == "KM":
        return BatchKMMatcher(backend=backend)
    if name == "CTop-1":
        return ConstrainedTopKRecommender(1, platform.num_brokers, capacity, rng)
    if name == "CTop-3":
        return ConstrainedTopKRecommender(3, platform.num_brokers, capacity, rng)
    if name == "AN":
        return NeuralUCBAssignment(
            platform.context_dim,
            platform.num_brokers,
            rng,
            bandit_config=bandit_config,
            backend=backend,
            batches_per_day=platform.batches_per_day,
        )
    if name in ("LACB", "LACB-Opt"):
        if lacb_config is None:
            lacb_config = LACBConfig(
                bandit=bandit_config or BanditConfig(),
                assignment=AssignmentConfig(
                    use_cbs=(name == "LACB-Opt"), matching_backend=backend
                ),
            )
        return LACBMatcher(
            platform.context_dim,
            platform.num_brokers,
            rng,
            lacb_config,
            batches_per_day=platform.batches_per_day,
        )
    raise KeyError(f"unknown algorithm {name!r}; choose from {ALGORITHM_NAMES}")
