"""Per-batch greedy matcher — the classical online-assignment baseline.

The paper's related work (Sec. VIII) cites the experimental finding that
"the greedy algorithm is competitive in many practical settings" [Tong et
al., VLDB'16].  This matcher takes the heaviest free edge repeatedly
within each batch — a 1/2-approximation of the per-batch KM value at a
fraction of its cost — and, like KM, stays capacity-oblivious across
batches.  Included as an extra baseline beyond the paper's roster.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import AssignedPair, Assignment
from repro.matching import greedy_assignment


class GreedyBatchMatcher(Matcher):
    """Capacity-oblivious greedy matching per batch."""

    name = "Greedy"
    one_to_one = True

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Greedy is stateless across days."""

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Take the heaviest free edge repeatedly within the batch."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        if request_ids.size == 0:
            return assignment
        match = greedy_assignment(utilities)
        for row, col in match.pairs:
            assignment.pairs.append(
                AssignedPair(int(request_ids[row]), int(col), float(utilities[row, col]))
            )
        return assignment
