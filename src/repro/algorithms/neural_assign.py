"""AN — Assignment with NeuralUCB (the strongest published baseline).

Combines the NeuralUCB bandit of Zhou et al. (cited as [9]) for workload
capacity exploration with per-batch KM assignment.  Relative to LACB it
lacks (i) per-broker personalization of the reward model and (ii) the
capacity-aware value function — both isolated by the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.bandits import NNUCBBandit
from repro.core.config import AssignmentConfig, BanditConfig
from repro.core.types import Assignment, DayOutcome
from repro.core.vfga import ValueFunctionGuidedAssigner
from repro.obs import telemetry as obs
from repro.state.protocol import expect, versioned


class NeuralUCBAssignment(Matcher):
    """Global NeuralUCB capacity estimation + capacity-capped batch KM.

    Args:
        context_dim: working-status context dimension.
        num_brokers: pool size.
        rng: randomness source.
        bandit_config: NeuralUCB settings (paper defaults when omitted).
        backend: matching backend.
    """

    name = "AN"
    one_to_one = True

    def __init__(
        self,
        context_dim: int,
        num_brokers: int,
        rng: np.random.Generator,
        bandit_config: BanditConfig | None = None,
        backend: str = "repro",
        batches_per_day: int | None = None,
    ) -> None:
        self.bandit = NNUCBBandit(context_dim, bandit_config or BanditConfig(), rng)
        # AN assigns by plain KM under the capacity cap: no value function,
        # no CBS — that is exactly VFGA with both switches off.
        self.assigner = ValueFunctionGuidedAssigner(
            num_brokers,
            AssignmentConfig(
                use_value_function=False, use_cbs=False, matching_backend=backend
            ),
            rng,
            batches_per_day=batches_per_day,
        )

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Estimate every broker's capacity with the shared bandit."""
        with obs.span("bandit.predict"):
            capacities = self.bandit.estimate_batch(contexts)
        self.assigner.begin_day(capacities)

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Capacity-capped per-batch KM (no value function, no CBS)."""
        return self.assigner.assign_batch(day, batch, request_ids, utilities)

    def end_day(self, day: int, outcome: DayOutcome, contexts: np.ndarray) -> None:
        """Feed back trial triples with the sign-up-rate reward.

        Same reward convention as LACB (Sec. V-B): the broker's realized
        daily sign-up rate.
        """
        with obs.span("vfga.end_day"):
            self.assigner.end_day()
        served = np.nonzero(outcome.workloads > 0)[0]
        with obs.span("bandit.update"):
            for broker_id in served:
                self.bandit.update(
                    contexts[broker_id],
                    float(outcome.workloads[broker_id]),
                    float(outcome.signup_rates[broker_id]),
                    int(broker_id),
                    capacity=float(self.assigner.capacities[broker_id]),
                )

    def snapshot(self) -> dict:
        """Deep snapshot: bandit + assigner (their shared RNG included)."""
        return versioned(
            "algorithms.neural_assign",
            {"bandit": self.bandit.snapshot(), "assigner": self.assigner.snapshot()},
        )

    def restore(self, state) -> None:
        payload = expect(state, "algorithms.neural_assign")
        self.bandit.restore(payload["bandit"])
        self.assigner.restore(payload["assigner"])
