"""Oracle-capacity matcher — the diagnostic skyline.

Runs the paper's assignment module with the *ground-truth* effective
capacities the simulator keeps hidden from every real algorithm.  Not a
competitor (it reads the environment's latent state, so it is deliberately
not registered in :func:`repro.algorithms.make_matcher`); it upper-bounds
what any capacity-estimation scheme could achieve with this assignment
module, which is how the capacity-estimation gap of LACB/AN is measured.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.config import AssignmentConfig
from repro.core.types import Assignment, DayOutcome
from repro.core.vfga import ValueFunctionGuidedAssigner
from repro.simulation.platform import RealEstatePlatform


class OracleCapacityMatcher(Matcher):
    """Capacity-capped assignment with ground-truth effective capacities.

    Args:
        platform: the environment whose latent capacities are read — the
            matcher must run against this same platform.
        rng: randomness for CBS pivots (when enabled).
        assignment_config: assignment-module settings; defaults to plain
            capacity-capped KM (no value function) so the skyline isolates
            capacity knowledge.
    """

    name = "Oracle"
    one_to_one = True

    def __init__(
        self,
        platform: RealEstatePlatform,
        rng: np.random.Generator,
        assignment_config: AssignmentConfig | None = None,
    ) -> None:
        self._platform = platform
        self.assigner = ValueFunctionGuidedAssigner(
            platform.num_brokers,
            assignment_config or AssignmentConfig(use_value_function=False),
            rng,
            batches_per_day=platform.batches_per_day,
        )

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Install the environment's hidden effective capacities."""
        self.assigner.begin_day(self._platform.effective_capacity(day))

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Capacity-capped per-batch KM under the oracle capacities."""
        return self.assigner.assign_batch(day, batch, request_ids, utilities)

    def end_day(self, day: int, outcome: DayOutcome, contexts: np.ndarray) -> None:
        """Close the assigner's day (no learning — the oracle knows)."""
        self.assigner.end_day()

    def snapshot(self) -> dict:
        """Durable state is the assigner's; the platform checkpoints itself."""
        from repro.state.protocol import versioned

        return versioned("algorithms.oracle", {"assigner": self.assigner.snapshot()})

    def restore(self, state) -> None:
        from repro.state.protocol import expect

        payload = expect(state, "algorithms.oracle")
        self.assigner.restore(payload["assigner"])
