"""The compared algorithms of Sec. VII-A behind one ``Matcher`` interface.

Category 1 — no explicit broker capacity:

- :class:`~repro.algorithms.topk.TopKRecommender` — the status-quo top-K
  recommendation (Top-1 and Top-3);
- :class:`~repro.algorithms.random_rec.RandomizedRecommender` — RR, sampling
  brokers with service quality as the fairness weight;
- :class:`~repro.algorithms.km_batch.BatchKMMatcher` — per-batch
  Kuhn-Munkres with no capacity awareness.

Category 2 — capacity first, then assignment:

- :class:`~repro.algorithms.ctopk.ConstrainedTopKRecommender` — CTop-K with
  a single empirically chosen city-level capacity;
- :class:`~repro.algorithms.neural_assign.NeuralUCBAssignment` — AN:
  capacities from a (non-personalized) NeuralUCB bandit + per-batch KM;
- :class:`~repro.algorithms.lacb.LACBMatcher` — the paper's LACB (and
  LACB-Opt via CBS).

Use :func:`~repro.algorithms.registry.make_matcher` to build any of them by
name with paper-default settings.
"""

from repro.algorithms.base import Matcher
from repro.algorithms.ctopk import ConstrainedTopKRecommender
from repro.algorithms.greedy_batch import GreedyBatchMatcher
from repro.algorithms.km_batch import BatchKMMatcher
from repro.algorithms.lacb import LACBMatcher
from repro.algorithms.neural_assign import NeuralUCBAssignment
from repro.algorithms.random_rec import RandomizedRecommender
from repro.algorithms.registry import ALGORITHM_NAMES, make_matcher
from repro.algorithms.topk import TopKRecommender

__all__ = [
    "ALGORITHM_NAMES",
    "BatchKMMatcher",
    "ConstrainedTopKRecommender",
    "GreedyBatchMatcher",
    "LACBMatcher",
    "Matcher",
    "NeuralUCBAssignment",
    "RandomizedRecommender",
    "TopKRecommender",
    "make_matcher",
]
