"""Top-K recommendation — the status quo the paper argues against.

For each request independently, the platform lists the K brokers with the
highest predicted utility (Fig. 1 shows K = 3 on Beike) and the client
picks one of them.  No capacity is ever consulted, so demand concentrates
on the same few top brokers — the root cause of the overloaded-top-brokers
phenomenon of Sec. II.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import AssignedPair, Assignment
from repro.state.protocol import StateError, expect, rng_state, set_rng_state, versioned


class TopKRecommender(Matcher):
    """Top-K recommendation with a utility-proportional client choice.

    Args:
        k: number of recommended brokers per request (paper evaluates
            K = 1 and K = 3).
        rng: client-choice randomness; with K = 1 the choice is forced.
        greedy_client: when ``True`` the client always picks the best of
            the K recommended brokers; otherwise the pick is sampled with
            probability proportional to utility (the default, mimicking
            real click behaviour).
    """

    def __init__(self, k: int, rng: np.random.Generator, greedy_client: bool = False) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.rng = rng
        self.greedy_client = greedy_client
        self.name = f"Top-{k}"

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Top-K is stateless across days."""

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Recommend the top-k brokers per request; the client picks one."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        if request_ids.size == 0:
            return assignment
        k = min(self.k, utilities.shape[1])
        # Indices of the top-k brokers per request (unordered is fine).
        top = np.argpartition(utilities, -k, axis=1)[:, -k:]
        for row, request_id in enumerate(request_ids):
            recommended = top[row]
            weights = utilities[row, recommended]
            if self.greedy_client or k == 1:
                choice = recommended[int(np.argmax(weights))]
            else:
                total = float(weights.sum())
                probs = weights / total if total > 0 else np.full(k, 1.0 / k)
                choice = recommended[int(self.rng.choice(k, p=probs))]
            assignment.pairs.append(
                AssignedPair(int(request_id), int(choice), float(utilities[row, choice]))
            )
        return assignment

    def snapshot(self) -> dict:
        """The only durable state is the client-choice RNG stream."""
        return versioned("algorithms.topk", {"k": self.k, "rng": rng_state(self.rng)})

    def restore(self, state) -> None:
        payload = expect(state, "algorithms.topk")
        if int(payload["k"]) != self.k:
            raise StateError(f"snapshot is for Top-{payload['k']}, this matcher is Top-{self.k}")
        set_rng_state(self.rng, payload["rng"])
