"""Per-batch Kuhn-Munkres — assignment without capacity awareness.

Runs the KM algorithm on the raw predicted utilities of every batch
independently (the classical batched-assignment baseline of Sec. VII-A).
Within a batch each broker serves at most one request, but nothing stops
the same top brokers from being re-picked batch after batch, so moderate
overload still occurs across a day.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.algorithms.base import Matcher
from repro.boosting.cache import UtilityPredictionCache
from repro.core.types import AssignedPair, Assignment
from repro.matching import IncrementalKMSolver, solve_assignment


class BatchKMMatcher(Matcher):
    """Capacity-oblivious per-batch optimal matching.

    Args:
        backend: matching backend (``"repro"`` or ``"scipy"``).
        pad_square: solve on the square-padded |B| x |B| graph (the paper's
            O(|B|^3) formulation); default uses the equivalent rectangular
            solve.
        incremental: warm-start consecutive batch solves from the recorded
            trajectory (bit-identical results; ``"repro"`` backend without
            padding only, and only while the fast kernels are active).
        utility_cache: attach a
            :class:`repro.boosting.cache.UtilityPredictionCache` for
            platforms serving predictions through ``CachedUtilityModel``.
            Batch KM learns nothing, so the cache is never invalidated
            here — its rows stay valid until the utility model refits.
    """

    name = "KM"
    one_to_one = True

    def __init__(
        self,
        backend: str = "repro",
        pad_square: bool = False,
        incremental: bool = False,
        utility_cache: bool = False,
    ) -> None:
        self.backend = backend
        self.pad_square = pad_square
        self.incremental = incremental
        self.utility_cache: UtilityPredictionCache | None = (
            UtilityPredictionCache() if utility_cache else None
        )
        self._incremental_solver: IncrementalKMSolver | None = None

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Batch KM is stateless across days."""

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Optimal one-to-one matching of the batch on raw utilities."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        if request_ids.size == 0:
            return assignment
        if (
            self.incremental
            and perf.fast_kernels_enabled()
            and self.backend == "repro"
            and not self.pad_square
        ):
            if self._incremental_solver is None:
                self._incremental_solver = IncrementalKMSolver()
            match = self._incremental_solver.solve(utilities, maximize=True)
        else:
            match = solve_assignment(
                utilities, maximize=True, backend=self.backend, pad_square=self.pad_square
            )
        for row, col in match.pairs:
            assignment.pairs.append(
                AssignedPair(int(request_ids[row]), int(col), float(utilities[row, col]))
            )
        return assignment
