"""Per-batch Kuhn-Munkres — assignment without capacity awareness.

Runs the KM algorithm on the raw predicted utilities of every batch
independently (the classical batched-assignment baseline of Sec. VII-A).
Within a batch each broker serves at most one request, but nothing stops
the same top brokers from being re-picked batch after batch, so moderate
overload still occurs across a day.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import AssignedPair, Assignment
from repro.matching import solve_assignment


class BatchKMMatcher(Matcher):
    """Capacity-oblivious per-batch optimal matching.

    Args:
        backend: matching backend (``"repro"`` or ``"scipy"``).
        pad_square: solve on the square-padded |B| x |B| graph (the paper's
            O(|B|^3) formulation); default uses the equivalent rectangular
            solve.
    """

    name = "KM"
    one_to_one = True

    def __init__(self, backend: str = "repro", pad_square: bool = False) -> None:
        self.backend = backend
        self.pad_square = pad_square

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Batch KM is stateless across days."""

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Optimal one-to-one matching of the batch on raw utilities."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        if request_ids.size == 0:
            return assignment
        match = solve_assignment(
            utilities, maximize=True, backend=self.backend, pad_square=self.pad_square
        )
        for row, col in match.pairs:
            assignment.pairs.append(
                AssignedPair(int(request_ids[row]), int(col), float(utilities[row, col]))
            )
        return assignment
