"""Constrained Top-K (CTop-K) — capacity-aware recommendation.

The extension of Top-K the paper compares against (Christakopoulou et al.,
cited as [24]): the platform observes the *city-level* workload/sign-up
relation (Fig. 2) and empirically picks one capacity for all brokers
(45 / 55 / 40 for Cities A / B / C).  Brokers at capacity are excluded from
the day's further recommendations; otherwise CTop-K behaves like Top-K.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import AssignedPair, Assignment
from repro.state.protocol import StateError, expect, rng_state, set_rng_state, versioned


class ConstrainedTopKRecommender(Matcher):
    """Top-K recommendation under a single empirical capacity.

    Args:
        k: number of recommended brokers per request.
        num_brokers: pool size.
        capacity: the empirically chosen city-level capacity.
        rng: client-choice randomness.
        greedy_client: always pick the best of the K (default: sample
            proportional to utility).
    """

    def __init__(
        self,
        k: int,
        num_brokers: int,
        capacity: float,
        rng: np.random.Generator,
        greedy_client: bool = False,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.k = k
        self.num_brokers = num_brokers
        self.capacity = float(capacity)
        self.rng = rng
        self.greedy_client = greedy_client
        self.name = f"CTop-{k}"
        self._workloads = np.zeros(num_brokers, dtype=int)

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Reset the daily workload counters the capacity is checked against."""
        self._workloads = np.zeros(self.num_brokers, dtype=int)

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Top-k over the brokers still below the empirical capacity."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        for row, request_id in enumerate(request_ids):
            open_brokers = np.nonzero(self._workloads < self.capacity)[0]
            if open_brokers.size == 0:
                break  # everybody is at the empirical capacity
            k = min(self.k, open_brokers.size)
            row_utilities = utilities[row, open_brokers]
            top_local = np.argpartition(row_utilities, -k)[-k:]
            recommended = open_brokers[top_local]
            weights = utilities[row, recommended]
            if self.greedy_client or k == 1:
                choice = recommended[int(np.argmax(weights))]
            else:
                total = float(weights.sum())
                probs = weights / total if total > 0 else np.full(k, 1.0 / k)
                choice = recommended[int(self.rng.choice(k, p=probs))]
            self._workloads[choice] += 1
            assignment.pairs.append(
                AssignedPair(int(request_id), int(choice), float(utilities[row, choice]))
            )
        return assignment

    def snapshot(self) -> dict:
        """Durable state: the RNG stream and today's workload counters.

        The counters reset at ``begin_day``, but checkpoints capture state
        *after* ``end_day`` — snapshotting them keeps the contract uniform
        (a mid-day snapshot would round-trip too).
        """
        return versioned(
            "algorithms.ctopk",
            {
                "k": self.k,
                "rng": rng_state(self.rng),
                "workloads": self._workloads.copy(),
            },
        )

    def restore(self, state) -> None:
        payload = expect(state, "algorithms.ctopk")
        workloads = np.array(payload["workloads"], dtype=int)
        if int(payload["k"]) != self.k or workloads.shape != (self.num_brokers,):
            raise StateError(
                f"snapshot (k={payload['k']}, {workloads.size} brokers) does not "
                f"match this recommender (k={self.k}, {self.num_brokers} brokers)"
            )
        set_rng_state(self.rng, payload["rng"])
        self._workloads = workloads
