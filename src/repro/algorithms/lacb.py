"""LACB and LACB-Opt — the paper's proposed matchers (Fig. 5, Alg. 1-3).

LACB couples

- *capacity estimation*: a shared NN-enhanced UCB bandit (Alg. 1) whose
  reward head is fine-tuned per broker by layer transfer (Sec. V-D), with
- *capacity-based assignment*: Value Function Guided Assignment (Alg. 2),
  per-batch KM over value-refined utilities (Eq. 15) under the estimated
  capacities, TD-training the capacity-aware value function (Eq. 14).

LACB-Opt is the same matcher with Candidate Broker Selection (Alg. 3)
switched on, shrinking each batch's bipartite graph from ``|B|`` to at most
``|R| ** 2`` candidate edges before KM runs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.bandits import NNUCBBandit, PersonalizedCapacityEstimator
from repro.boosting.cache import UtilityPredictionCache
from repro.core.config import LACBConfig
from repro.core.types import Assignment, DayOutcome
from repro.core.vfga import ValueFunctionGuidedAssigner
from repro.obs import telemetry as obs
from repro.state.protocol import expect, versioned


class LACBMatcher(Matcher):
    """Learned Assignment with Contextual Bandits.

    Args:
        context_dim: working-status context dimension.
        num_brokers: pool size.
        rng: randomness source.
        config: full LACB configuration; paper defaults when omitted.
            ``config.assignment.use_cbs = True`` yields LACB-Opt.
        batches_per_day: fixed time windows per day (sharpens the value
            function's time axis; inferred online when omitted).
    """

    one_to_one = True

    def __init__(
        self,
        context_dim: int,
        num_brokers: int,
        rng: np.random.Generator,
        config: LACBConfig | None = None,
        batches_per_day: int | None = None,
    ) -> None:
        self.config = config or LACBConfig()
        self.name = "LACB-Opt" if self.config.assignment.use_cbs else "LACB"
        base = NNUCBBandit(context_dim, self.config.bandit, rng)
        if self.config.personalize:
            self.estimator: NNUCBBandit | PersonalizedCapacityEstimator = (
                PersonalizedCapacityEstimator(base)
            )
        else:
            self.estimator = base
        self.assigner = ValueFunctionGuidedAssigner(
            num_brokers, self.config.assignment, rng, batches_per_day=batches_per_day
        )
        # Cache-aside handle for platforms serving utilities through
        # repro.boosting.cache.CachedUtilityModel: this matcher owns the
        # invalidation side of the contract (see end_day).
        self.utility_cache: UtilityPredictionCache | None = (
            UtilityPredictionCache() if self.config.assignment.utility_cache else None
        )
        self._day = 0

    # ------------------------------------------------------------------
    # Matcher protocol
    # ------------------------------------------------------------------
    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Alg. 2 lines 1-2: estimate every broker's capacity for the day."""
        self._day = day
        with obs.span("bandit.predict"):
            capacities = self.estimator.estimate_batch(contexts)
        self.assigner.begin_day(capacities)

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Alg. 2 lines 4-10 (with Alg. 3 pruning when CBS is on)."""
        return self.assigner.assign_batch(day, batch, request_ids, utilities)

    def end_day(self, day: int, outcome: DayOutcome, contexts: np.ndarray) -> None:
        """Alg. 2 lines 15-17: feed trial triples back into the bandits.

        The bandit reward is the broker's realized daily sign-up rate
        (Sec. V-B) — the service-quality signal whose curve peaks at the
        broker's accustomed workload (Fig. 2/3).  Maximizing the broker's
        *total* accrued utility instead is an externality trap: an
        overloaded top broker still accumulates more personal utility than
        a capped one while destroying system-wide value.

        Personalization starts after ``warmup_days`` so broker-specific
        heads are fine-tuned only once a few private triples exist.
        """
        with obs.span("vfga.end_day"):
            self.assigner.end_day()
        served = np.nonzero(outcome.workloads > 0)[0]
        personalize_now = (
            self.config.personalize and day >= self.config.warmup_days
        )
        with obs.span("bandit.update"):
            for broker_id in served:
                routing_id = (
                    int(broker_id)
                    if personalize_now or not self.config.personalize
                    else None
                )
                self.estimator.update(
                    contexts[broker_id],
                    float(outcome.workloads[broker_id]),
                    float(outcome.signup_rates[broker_id]),
                    routing_id,
                    capacity=float(self.assigner.capacities[broker_id]),
                )
        # The day's value-function and bandit updates just landed; any
        # utility rows cached under the previous learned state are now
        # stale by the cache-aside contract.
        if self.utility_cache is not None:
            self.utility_cache.notify_learning_update()

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot: estimator + assigner (their shared RNG included).

        The estimator and the assigner share one generator (handed out by
        the algorithm registry); both sub-snapshots carry the same captured
        stream state, and both restores reinstall it into the same live
        object, so the sharing survives the round trip.
        """
        return versioned(
            "algorithms.lacb",
            {
                "name": self.name,
                "estimator": self.estimator.snapshot(),
                "assigner": self.assigner.snapshot(),
                "day": int(self._day),
                "utility_cache": (
                    None if self.utility_cache is None else self.utility_cache.snapshot()
                ),
            },
        )

    def restore(self, state) -> None:
        payload = expect(state, "algorithms.lacb")
        if payload["name"] != self.name:
            from repro.state.protocol import StateError

            raise StateError(
                f"snapshot is for {payload['name']!r}, this matcher is {self.name!r}"
            )
        self.estimator.restore(payload["estimator"])
        self.assigner.restore(payload["assigner"])
        self._day = int(payload["day"])
        # Older snapshots predate the cache; resuming without one only
        # costs recomputed rows — results are bit-identical either way.
        cache_state = payload.get("utility_cache")
        if cache_state is not None:
            if self.utility_cache is None:
                self.utility_cache = UtilityPredictionCache()
            self.utility_cache.restore(cache_state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def estimated_capacities(self) -> np.ndarray:
        """The capacities installed for the current day."""
        return self.assigner.capacities
