"""The matcher protocol every compared algorithm implements.

The experiment runner drives a matcher through the platform's day loop::

    matcher.begin_day(day, contexts)
    for each batch:
        assignment = matcher.assign_batch(day, batch, request_ids, utilities)
    matcher.end_day(day, outcome, contexts)

Matchers never see ground truth — only the deployed model's predicted
utilities and the end-of-day realized feedback (workloads and sign-up
rates), exactly the information the paper's platform reveals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.types import Assignment, DayOutcome


class Matcher(ABC):
    """Base class of all broker-matching algorithms."""

    #: Human-readable algorithm name used in reports and figures.
    name: str = "matcher"

    #: Whether each batch assignment is one-to-one on the broker side.
    #: Assignment-style matchers (KM, Greedy, AN, LACB, Oracle) match each
    #: broker at most once per batch; recommenders (Top-K, RR, CTop-K) may
    #: legitimately send several of a batch's requests to the same broker.
    #: Consumed by :class:`repro.check.hook.CheckHook` to decide whether
    #: the broker-matched-at-most-once invariant applies.
    one_to_one: bool = False

    @abstractmethod
    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Observe the day's broker working-status contexts."""

    @abstractmethod
    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Produce the assignment ``M^(i)`` for one batch of requests.

        Args:
            day / batch: interval coordinates.
            request_ids: global ids of the requests in the batch.
            utilities: ``(|R_batch|, |B|)`` predicted utilities ``u_{r,b}``.
        """

    def end_day(self, day: int, outcome: DayOutcome, contexts: np.ndarray) -> None:
        """Receive realized end-of-day feedback (optional hook)."""

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Default snapshot for matchers with no day-spanning state.

        Capacity-oblivious per-batch matchers (Greedy, KM) decide every
        batch from its utilities alone, so their durable state is empty;
        the envelope still records the algorithm name so a checkpoint can
        never be restored into a different matcher unnoticed.  Stateful
        matchers override both methods.
        """
        from repro.state.protocol import versioned

        return versioned("algorithms.stateless", {"name": self.name})

    def restore(self, state) -> None:
        """Validate the envelope and algorithm name; nothing to reinstall."""
        from repro.state.protocol import StateError, expect

        payload = expect(state, "algorithms.stateless")
        if payload["name"] != self.name:
            raise StateError(
                f"snapshot is for algorithm {payload['name']!r}, this matcher "
                f"is {self.name!r}"
            )
