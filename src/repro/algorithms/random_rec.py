"""Randomized Recommendation (RR) — the fairness-flavoured baseline.

Extends fair matching (Basik et al., cited as [23]) to broker matching:
each request is served by a broker sampled with the broker's *service
quality* as the sampling weight.  Spreading requests over the whole pool
avoids overload by construction, but ignores the request-broker fit, so
total utility suffers — the trade-off Fig. 9/10 of the paper illustrate.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Matcher
from repro.core.types import AssignedPair, Assignment, DayOutcome
from repro.state.protocol import StateError, expect, rng_state, set_rng_state, versioned


class RandomizedRecommender(Matcher):
    """Quality-weighted random broker sampling.

    Service quality is tracked online as a running mean of each broker's
    observed daily sign-up rates; before any feedback the weights are
    uniform.

    Args:
        num_brokers: pool size.
        rng: sampling randomness.
    """

    name = "RR"

    def __init__(self, num_brokers: int, rng: np.random.Generator) -> None:
        if num_brokers <= 0:
            raise ValueError(f"num_brokers must be positive, got {num_brokers}")
        self.num_brokers = num_brokers
        self.rng = rng
        self._quality_sum = np.zeros(num_brokers)
        self._quality_count = np.zeros(num_brokers)

    def _weights(self) -> np.ndarray:
        observed = self._quality_count > 0
        quality = np.full(self.num_brokers, 0.1)
        quality[observed] = np.maximum(
            self._quality_sum[observed] / self._quality_count[observed], 1e-3
        )
        return quality / quality.sum()

    def begin_day(self, day: int, contexts: np.ndarray) -> None:
        """Refresh the quality-proportional sampling weights."""
        self._day_weights = self._weights()

    def assign_batch(
        self,
        day: int,
        batch: int,
        request_ids: np.ndarray,
        utilities: np.ndarray,
    ) -> Assignment:
        """Sample one broker per request, weighted by service quality."""
        request_ids = np.asarray(request_ids, dtype=int)
        utilities = np.asarray(utilities, dtype=float)
        assignment = Assignment(day=day, batch=batch)
        if request_ids.size == 0:
            return assignment
        brokers = self.rng.choice(
            self.num_brokers, size=request_ids.size, p=self._day_weights
        )
        for row, (request_id, broker) in enumerate(zip(request_ids, brokers)):
            assignment.pairs.append(
                AssignedPair(int(request_id), int(broker), float(utilities[row, broker]))
            )
        return assignment

    def end_day(self, day: int, outcome: DayOutcome, contexts: np.ndarray) -> None:
        """Fold today's sign-up rates into the running quality means."""
        served = outcome.workloads > 0
        self._quality_sum[served] += outcome.signup_rates[served]
        self._quality_count[served] += 1

    def snapshot(self) -> dict:
        """Durable state: the RNG stream and the running quality means.

        ``_day_weights`` is recomputed from these at every ``begin_day``
        and checkpoints are taken at day boundaries, so it is transient.
        """
        return versioned(
            "algorithms.random_rec",
            {
                "rng": rng_state(self.rng),
                "quality_sum": self._quality_sum.copy(),
                "quality_count": self._quality_count.copy(),
            },
        )

    def restore(self, state) -> None:
        payload = expect(state, "algorithms.random_rec")
        quality_sum = np.array(payload["quality_sum"], dtype=float)
        if quality_sum.shape != (self.num_brokers,):
            raise StateError(
                f"snapshot is for {quality_sum.size} brokers, "
                f"this recommender has {self.num_brokers}"
            )
        set_rng_state(self.rng, payload["rng"])
        self._quality_sum = quality_sum
        self._quality_count = np.array(payload["quality_count"], dtype=float)
