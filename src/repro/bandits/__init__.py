"""Contextual bandits for online workload-capacity estimation (Sec. V).

The workload capacity estimator is a contextual bandit whose arms are
candidate daily capacities ``C``, whose context is the broker's working
status ``x_b`` and whose reward is the realized daily sign-up rate ``s_b``
(Sec. V-B).  This package provides

- :class:`~repro.bandits.base.CapacityEstimator` — the estimator protocol;
- :class:`~repro.bandits.linucb.LinUCBBandit` — the standard linear UCB of
  Eq. 3 (the LinUCB [Li et al. 2010] family);
- :class:`~repro.bandits.neural_ucb.NNUCBBandit` — the paper's NN-enhanced
  UCB (Alg. 1, Eq. 5-6) with exact or diagonal covariance;
- :class:`~repro.bandits.personalization.PersonalizedCapacityEstimator` —
  per-broker fine-tuning of the last layer by layer transfer (Sec. V-D);
- :mod:`~repro.bandits.regret` — regret accounting and the Theorem 1 bound.
"""

from repro.bandits.base import CapacityEstimator, FixedCapacityEstimator
from repro.bandits.linucb import LinUCBBandit
from repro.bandits.neural_ucb import NNUCBBandit
from repro.bandits.personalization import PersonalizedCapacityEstimator
from repro.bandits.regret import RegretTracker, theorem1_bound
from repro.bandits.thompson import NeuralThompsonBandit, make_thompson_bandit

__all__ = [
    "CapacityEstimator",
    "FixedCapacityEstimator",
    "LinUCBBandit",
    "NNUCBBandit",
    "NeuralThompsonBandit",
    "PersonalizedCapacityEstimator",
    "RegretTracker",
    "make_thompson_bandit",
    "theorem1_bound",
]
