"""Personalized capacity estimation by layer transfer (Sec. V-D).

A single generic bandit cannot capture broker-specific workload-response
patterns (Fig. 3), yet per-broker data is too sparse to train independent
networks.  The paper's remedy: keep the shared reward model's first
``L - 1`` layers as a common representation and adapt only the output
mapping per broker on that broker's own observations.

Two realizations of the broker-specific output adaptation are provided:

- ``"residual"`` (default) — a kernel-smoothed, shrunk correction curve
  over the capacity arms, fit to the broker's *residuals* against the
  shared model.  A broker whose own trials show (say) that capacity 25
  out-performs what the generic model expects gets its reward curve bent
  upward around 25.  Unlike a linear re-weighting of shared features, this
  can express broker-specific interior peaks — the defining property of
  the Fig. 3 curves — from a handful of observations.
- ``"linear"`` — the literal last-layer fine-tune: an anchored ridge refit
  of the final dense layer on broker data.  Kept as an ablation; with few
  samples concentrated on one arm it cannot bend the curve against the
  shared trend (measurably weaker, see the personalization bench).

Because capacity choices gate what can be observed, each broker's first
few estimates follow a fixed spread of arms across the grid (structured
per-broker exploration) — otherwise a top broker pinned at one arm never
produces the data its own fine-tuning needs.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.bandits.base import CapacityEstimator
from repro.bandits.neural_ucb import NNUCBBandit
from repro.core.types import TrialTriple, triples_from_state, triples_to_state
from repro.obs import audit as obs_audit
from repro.state.protocol import expect, versioned

#: Grid quantiles visited by each broker's first estimates (structured
#: exploration): mid, upper, low, high — enough spread to sketch the
#: broker's own response curve.
EXPLORE_QUANTILES = (0.4, 0.7, 0.15, 0.9)


class PersonalizedCapacityEstimator(CapacityEstimator):
    """Generic NN-UCB base model plus per-broker output corrections.

    Args:
        base: the shared NN-enhanced UCB bandit (trained on all triples).
        min_triples: broker-specific observations required before that
            broker's correction kicks in (cold-start safety).
        mode: ``"residual"`` or ``"linear"`` (see module docstring).
        kernel_width: capacity-units bandwidth of the residual kernel.
        prior_mass: shrinkage mass pulling corrections toward zero — the
            equivalent number of pseudo-observations agreeing with the
            shared model.
        anchor_strength: ridge weight for the ``"linear"`` mode.
        max_history: per-broker observation window kept for fine-tuning.
        personal_explore: how many structured exploration pulls each broker
            makes before following its personalized UCB argmax.
    """

    def __init__(
        self,
        base: NNUCBBandit,
        min_triples: int = 3,
        mode: str = "residual",
        kernel_width: float = 10.0,
        prior_mass: float = 2.0,
        anchor_strength: float = 1.0,
        max_history: int = 64,
        personal_explore: int = len(EXPLORE_QUANTILES),
    ) -> None:
        if mode not in ("residual", "linear"):
            raise ValueError(f"mode must be 'residual' or 'linear', got {mode!r}")
        if kernel_width <= 0 or prior_mass <= 0 or anchor_strength <= 0:
            raise ValueError("kernel_width, prior_mass and anchor_strength must be positive")
        self.base = base
        self.min_triples = min_triples
        self.mode = mode
        self.kernel_width = kernel_width
        self.prior_mass = prior_mass
        self.anchor_strength = anchor_strength
        self.max_history = max_history
        self.personal_explore = min(personal_explore, len(EXPLORE_QUANTILES))
        self._history: dict[int, list[TrialTriple]] = {}
        self._pull_count: dict[int, int] = {}
        self._linear_heads: dict[int, np.ndarray] = {}

    @property
    def capacities(self) -> np.ndarray:
        """The shared candidate capacity set ``C``."""
        return self.base.capacities

    def num_personalized(self) -> int:
        """How many brokers currently have enough data for a correction."""
        return sum(
            1 for history in self._history.values() if len(history) >= self.min_triples
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def personalized_scores(self, context: np.ndarray, broker_id: int) -> np.ndarray:
        """UCB scores with the broker's output correction applied."""
        rows = self.base.arm_feature_rows(context)
        if self.mode == "linear" and broker_id in self._linear_heads:
            features = self.base.network.hidden_features(rows)
            design = np.hstack([features, np.ones((features.shape[0], 1))])
            means = design @ self._linear_heads[broker_id]
        else:
            means = self.base.network.predict(rows)
            means = means + self._residual_correction(broker_id)
        if perf.fast_kernels_enabled():
            bonuses = self.base.exploration_bonuses(
                self.base.network.param_gradients(rows)
            )
        else:
            bonuses = np.array(
                [
                    self.base.exploration_bonus(self.base.network.param_gradient(row))
                    for row in rows
                ]
            )
        if obs_audit.current() is not None:
            self.base.last_score_parts = (means, bonuses)
        return means + self.base.config.alpha * bonuses

    def _residual_correction(self, broker_id: int) -> np.ndarray:
        """Kernel-smoothed, shrunk residual curve over the arm grid."""
        history = self._history.get(broker_id, ())
        if len(history) < self.min_triples:
            return np.zeros(self.base.capacities.size)
        rows = np.stack(
            [self.base._features(t.context, float(t.workload)) for t in history]
        )
        residuals = np.array([t.reward for t in history]) - self.base.network.predict(rows)
        arms = np.array([float(t.workload) for t in history])
        # Gaussian kernel weights of each own-trial arm against each grid arm.
        distances = (self.base.capacities[:, None] - arms[None, :]) / self.kernel_width
        weights = np.exp(-0.5 * distances**2)
        return (weights @ residuals) / (weights.sum(axis=1) + self.prior_mass)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate(self, context: np.ndarray, broker_id: int | None = None) -> float:
        """Structured exploration, then personalized UCB argmax."""
        if broker_id is None:
            return self.base.estimate(context, broker_id)
        pulls = self._pull_count.get(broker_id, 0)
        if pulls < self.personal_explore:
            self._pull_count[broker_id] = pulls + 1
            quantile = EXPLORE_QUANTILES[pulls]
            chosen = int(round(quantile * (self.base.capacities.size - 1)))
            rule = "personal-explore"
            self.base.last_score_parts = None  # never scored on this path
        elif len(self._history.get(broker_id, ())) < self.min_triples:
            return self.base.estimate(context, broker_id)
        else:
            chosen, rule = self.base._pick_explain(
                lambda ctx: self.personalized_scores(ctx, broker_id), context
            )
            if rule == "ucb":
                rule = "personal-ucb"
        self.base._note_choice(
            broker_id, chosen, float(self.base.capacities[chosen]), rule
        )
        self.base._arm_pulls[chosen] += 1
        self.base._update_covariance(
            self.base.network.param_gradient(
                self.base._features(context, float(self.base.capacities[chosen]))
            )
        )
        return float(self.base.capacities[chosen])

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def update(
        self,
        context: np.ndarray,
        workload: float,
        reward: float,
        broker_id: int | None = None,
        capacity: float | None = None,
    ) -> None:
        """Update the shared base model and the broker's private history."""
        self.base.update(context, workload, reward, broker_id, capacity)
        if broker_id is None:
            return
        # Same rounding on both paths as NNUCBBandit.update — truncation
        # would split one arm bucket across kernel/stratification arms.
        if self.base.config.train_on == "capacity" and capacity is not None:
            arm_input = int(round(capacity))
        else:
            arm_input = int(round(workload))
        history = self._history.setdefault(broker_id, [])
        history.append(
            TrialTriple(np.asarray(context, dtype=float), arm_input, float(reward))
        )
        if len(history) > self.max_history:
            del history[: len(history) - self.max_history]
        if self.mode == "linear" and len(history) >= self.min_triples:
            self._fit_linear_head(broker_id, history)

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot: the shared base bandit plus per-broker state."""
        return versioned(
            "bandits.personalized",
            {
                "base": self.base.snapshot(),
                "history": {
                    broker_id: triples_to_state(history)
                    for broker_id, history in self._history.items()
                },
                "pull_count": dict(self._pull_count),
                "linear_heads": {
                    broker_id: head.copy()
                    for broker_id, head in self._linear_heads.items()
                },
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` (base bandit included)."""
        payload = expect(state, "bandits.personalized")
        self.base.restore(payload["base"])
        self._history = {
            int(broker_id): triples_from_state(history)
            for broker_id, history in payload["history"].items()
        }
        self._pull_count = {
            int(broker_id): int(count)
            for broker_id, count in payload["pull_count"].items()
        }
        self._linear_heads = {
            int(broker_id): np.array(head, dtype=float)
            for broker_id, head in payload["linear_heads"].items()
        }

    def _fit_linear_head(self, broker_id: int, history: list[TrialTriple]) -> None:
        """Anchored ridge refit of the last layer (the ``"linear"`` mode)."""
        last = self.base.network.layers[-1]
        anchor = np.concatenate([last.weight[0], last.bias])
        rows = np.stack(
            [self.base._features(t.context, float(t.workload)) for t in history]
        )
        features = self.base.network.hidden_features(rows)
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        targets = np.array([t.reward for t in history])
        gram = design.T @ design + self.anchor_strength * np.eye(design.shape[1])
        rhs = design.T @ targets + self.anchor_strength * anchor
        self._linear_heads[broker_id] = np.linalg.solve(gram, rhs)
