"""Capacity-estimator protocol shared by all bandit policies."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class CapacityEstimator(ABC):
    """Online estimator of broker daily workload capacities.

    The estimator interacts with the platform exactly as in Fig. 5: at the
    start of each day it *estimates* a capacity per broker from the working
    status context, and at the end of the day it is *updated* with the
    observed trial triple ``(x, w, s)``.

    Implementations may be generic (one model for all brokers, the paper's
    Alg. 1) or personalized (per-broker fine-tuned heads, Sec. V-D) — the
    ``broker_id`` argument lets personalized estimators route accordingly.
    """

    @abstractmethod
    def estimate(self, context: np.ndarray, broker_id: int | None = None) -> float:
        """Choose a workload capacity for one broker (``B.estimate(x)``)."""

    @abstractmethod
    def update(
        self,
        context: np.ndarray,
        workload: float,
        reward: float,
        broker_id: int | None = None,
        capacity: float | None = None,
    ) -> None:
        """Feed back one observed trial triple.

        Args:
            context: the working status ``x`` the decision was made under.
            workload: the realized workload ``w``.
            reward: the observed reward ``s``.
            broker_id: identity for personalized estimators.
            capacity: the capacity ``c`` that was chosen for the day (lets
                implementations train on the chosen arm, Alg. 1 line 16).
        """

    def estimate_batch(self, contexts: np.ndarray, broker_ids: np.ndarray | None = None) -> np.ndarray:
        """Vectorized convenience: one capacity per context row."""
        contexts = np.atleast_2d(np.asarray(contexts, dtype=float))
        if broker_ids is None:
            broker_ids = np.arange(contexts.shape[0])
        return np.array(
            [
                self.estimate(context, int(broker_id))
                for context, broker_id in zip(contexts, broker_ids)
            ]
        )


class FixedCapacityEstimator(CapacityEstimator):
    """Degenerate estimator returning one preset capacity for everybody.

    This is the capacity model of the CTop-K baseline (Sec. VII-A): a single
    empirically chosen city-level capacity (45 / 55 / 40 for Cities A/B/C).
    """

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)

    def estimate(self, context: np.ndarray, broker_id: int | None = None) -> float:
        """Return the preset capacity regardless of context."""
        return self.capacity

    def update(
        self,
        context: np.ndarray,
        workload: float,
        reward: float,
        broker_id: int | None = None,
        capacity: float | None = None,
    ) -> None:
        """Fixed capacities ignore feedback."""

    def snapshot(self) -> dict:
        """Stateless: the snapshot records only the configured capacity."""
        from repro.state.protocol import versioned

        return versioned("bandits.fixed", {"capacity": self.capacity})

    def restore(self, state) -> None:
        """Validate the envelope; a fixed estimator has nothing to restore."""
        from repro.state.protocol import expect

        expect(state, "bandits.fixed")
