"""Neural Thompson Sampling — the stochastic alternative to UCB.

The contextual-bandit literature the paper builds on (Sec. VIII) contains
two main exploration principles: optimism (LinUCB / NeuralUCB, what LACB
uses) and posterior sampling (Thompson).  Neural Thompson Sampling (Zhang
et al., 2021) scores each arm by a *sample* from an approximate Gaussian
posterior whose variance is the same gradient-covariance form as the UCB
bonus:

    score(x, c) ~ Normal( S_theta(x, c),  nu^2 * g^T D^{-1} g )

This class reuses the NN-enhanced UCB machinery (network, covariance,
replay training, safeguards) and swaps the arm-selection rule, so the
UCB-vs-TS comparison isolates exactly the exploration principle.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.bandits.neural_ucb import NNUCBBandit
from repro.core.config import BanditConfig


class NeuralThompsonBandit(NNUCBBandit):
    """NN-enhanced Thompson sampling over candidate capacities.

    Args:
        context_dim: dimension of the working-status context ``x``.
        config: shared bandit hyper-parameters; ``config.alpha`` plays the
            role of the posterior scale ``nu``.
        rng: randomness source (initialization and posterior samples).
    """

    def ucb_scores(self, context: np.ndarray) -> np.ndarray:
        """Posterior samples per arm (replaces the optimistic bound).

        Named ``ucb_scores`` so every selection safeguard of the base class
        (coverage floor, epsilon exploration, conservative tie-breaking)
        applies unchanged.
        """
        means = self.predicted_rewards(context)
        rows = self.arm_feature_rows(context)
        if perf.fast_kernels_enabled():
            deviations = self.exploration_bonuses(self.network.param_gradients(rows))
        else:
            deviations = np.array(
                [
                    self.exploration_bonus(self.network.param_gradient(row))
                    for row in rows
                ]
            )
        noise = self._rng.normal(0.0, 1.0, size=self.capacities.size)
        return means + self.config.alpha * deviations * noise

    def posterior_mean_scores(self, context: np.ndarray) -> np.ndarray:
        """The noise-free posterior means (for analysis and tests)."""
        return self.predicted_rewards(context)

    #: Same payload as the base class, but a distinct kind: a Thompson
    #: checkpoint must not silently restore into a UCB bandit (or back).
    STATE_KIND = "bandits.thompson"


def make_thompson_bandit(
    context_dim: int,
    rng: np.random.Generator,
    config: BanditConfig | None = None,
) -> NeuralThompsonBandit:
    """Convenience constructor with the library's default configuration."""
    return NeuralThompsonBandit(context_dim, config or BanditConfig(), rng)
