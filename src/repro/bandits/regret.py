"""Regret accounting and the Theorem 1 bound (Sec. V-E).

The regret of the capacity estimator is the gap between the sign-up rates
an oracle choosing the best candidate capacity would have collected and
those the learned policy actually collected (Eq. 7).  Theorem 1 bounds it
by ``n |C| xi^L / pi^(L-1)`` where ``xi`` is the largest singular value
among the reward network's weight matrices.
"""

from __future__ import annotations

import numpy as np


def theorem1_bound(num_batches: int, num_arms: int, depth: int, xi: float) -> float:
    """The Theorem 1 regret bound ``n |C| xi^L / pi^(L-1)``.

    Args:
        num_batches: number of trials ``n``.
        num_arms: number of candidate capacities ``|C|``.
        depth: network depth ``L``.
        xi: maximum singular value over the network's weight matrices.
    """
    if min(num_batches, num_arms, depth) <= 0:
        raise ValueError("num_batches, num_arms and depth must be positive")
    if xi < 0:
        raise ValueError(f"xi must be non-negative, got {xi}")
    return num_batches * num_arms * xi**depth / np.pi ** (depth - 1)


class RegretTracker:
    """Accumulates per-trial regret against an oracle's best arm.

    Usage: at each trial, report the reward actually obtained and the
    vector of (ground-truth expected) rewards of every candidate arm.
    """

    def __init__(self) -> None:
        self._instantaneous: list[float] = []

    def record(self, obtained_reward: float, oracle_rewards: np.ndarray) -> float:
        """Record one trial; returns the instantaneous regret.

        Args:
            obtained_reward: the reward the policy actually collected.
            oracle_rewards: expected reward of every candidate capacity
                under the trial's context (ground truth).
        """
        oracle_rewards = np.asarray(oracle_rewards, dtype=float)
        if oracle_rewards.size == 0:
            raise ValueError("oracle_rewards must be non-empty")
        regret = float(oracle_rewards.max() - obtained_reward)
        self._instantaneous.append(regret)
        return regret

    @property
    def num_trials(self) -> int:
        """Number of recorded trials ``n``."""
        return len(self._instantaneous)

    @property
    def cumulative_regret(self) -> float:
        """Total regret over all recorded trials (Eq. 7)."""
        return float(np.sum(self._instantaneous))

    def cumulative_curve(self) -> np.ndarray:
        """Running cumulative regret after each trial."""
        return np.cumsum(self._instantaneous) if self._instantaneous else np.empty(0)
