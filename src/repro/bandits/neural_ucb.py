"""NN-enhanced UCB — the paper's capacity-estimation policy (Alg. 1).

The linear reward model of LinUCB is replaced by an MLP ``S_theta(x, c)``
(Eq. 4) and the exploration bonus uses the network's parameter gradient
(Eq. 5):

    UCB_{x,c} = S_theta(x, c) + alpha * sqrt(g_theta(x, c)^T D^{-1} g_theta(x, c))

``D`` starts at ``lambda I`` and accumulates gradient outer products of the
chosen arms (Alg. 1 line 12).  Because ``D`` is ``d x d`` for a ``d``-
parameter network, two regimes are supported:

- ``"full"`` — exact ``D`` with Sherman-Morrison updates of its inverse;
  only practical for small reward models (tests, ablations);
- ``"diagonal"`` — the standard NeuralUCB-style diagonal approximation,
  the default for realistic network sizes.

Observed trial triples ``(x, w, s)`` accumulate in a buffer of
``batchSize`` (preset 16, Sec. VII-A) and flushing the buffer minimizes the
regularized squared loss of Eq. 6.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.bandits.base import CapacityEstimator
from repro.core.config import BanditConfig
from repro.core.types import TrialTriple, triples_from_state, triples_to_state
from repro.nn import MLP, Adam
from repro.obs import audit as obs_audit
from repro.obs import telemetry as obs
from repro.state.protocol import (
    StateError,
    expect,
    rng_state,
    set_rng_state,
    versioned,
)


class NNUCBBandit(CapacityEstimator):
    """Contextual bandit ``B_{theta,D}`` with an MLP reward model.

    Args:
        context_dim: dimension of the working-status context ``x``.
        config: bandit hyper-parameters (Alg. 1 inputs).
        rng: randomness source for Gaussian parameter initialization.
    """

    def __init__(
        self,
        context_dim: int,
        config: BanditConfig,
        rng: np.random.Generator,
    ) -> None:
        if context_dim <= 0:
            raise ValueError(f"context_dim must be positive, got {context_dim}")
        self.config = config
        self.capacities = np.asarray(config.candidate_capacities, dtype=float)
        self._cap_norm = float(self.capacities.max())
        layer_sizes = [context_dim + 1 + self.capacities.size, *config.hidden_sizes, 1]
        self.network = MLP(layer_sizes, rng)
        self.optimizer = Adam(config.learning_rate)
        self._rng = rng
        self._arm_pulls = np.zeros(self.capacities.size, dtype=int)
        dim = self.network.num_params
        if config.covariance == "full":
            self._d_inv: np.ndarray | None = np.eye(dim) / config.lam
            self._d_diag: np.ndarray | None = None
        else:
            self._d_inv = None
            self._d_diag = np.full(dim, config.lam)
        self._buffer: list[TrialTriple] = []
        self._replay: list[TrialTriple] = []
        self.num_updates = 0
        self.num_train_steps = 0
        # Context-independent tail of every grid arm's feature row
        # ``[x; c/|C|max; onehot]`` — scoring rebuilds only the context part.
        self._arm_row_tail = np.stack(
            [self._features(np.empty(0), c) for c in self.capacities]
        )
        # Decision provenance: while an audit session is active, scoring
        # stashes its (means, bonuses) split here so the chosen arm's
        # components can be recorded without recomputing anything.
        self.last_score_parts: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Scoring (Eq. 5)
    # ------------------------------------------------------------------
    def _features(self, context: np.ndarray, capacity: float) -> np.ndarray:
        """Joint input ``[x; c]``: context, scaled capacity, one-hot arm.

        The scalar alone gets smoothed away during training — it is one
        feature among dozens and the reward's dependence on it is a small
        bump, so the fit degenerates to a monotone trend and the argmax
        pins to an endpoint.  A one-hot of the nearest grid arm gives every
        arm its own first-layer weights, making per-arm reward levels
        trivially expressible while the scalar keeps the ordinal structure.
        """
        onehot = np.zeros(self.capacities.size)
        onehot[int(np.argmin(np.abs(self.capacities - capacity)))] = 1.0
        return np.concatenate(
            [np.asarray(context, dtype=float), [capacity / self._cap_norm], onehot]
        )

    def arm_feature_rows(self, context: np.ndarray) -> np.ndarray:
        """``(|C|, input_dim)`` feature rows of every grid arm for a context.

        Bitwise-identical to stacking :meth:`_features` per arm (pure
        copies), but the capacity-scalar / one-hot tail is precomputed at
        construction instead of being rebuilt on every scoring call.
        """
        context = np.asarray(context, dtype=float)
        return np.concatenate(
            [
                np.broadcast_to(context, (self.capacities.size, context.size)),
                self._arm_row_tail,
            ],
            axis=1,
        )

    def predicted_rewards(self, context: np.ndarray) -> np.ndarray:
        """``S_theta(x, c)`` for every candidate capacity, in one batch."""
        return self.network.predict(self.arm_feature_rows(context))

    def exploration_bonus(self, gradient: np.ndarray) -> float:
        """``sqrt(g^T D^{-1} g)`` under the configured covariance regime."""
        if self._d_inv is not None:
            value = float(gradient @ self._d_inv @ gradient)
        else:
            value = float(np.sum(gradient**2 / self._d_diag))
        return float(np.sqrt(max(value, 0.0)))

    def exploration_bonuses(self, gradients: np.ndarray) -> np.ndarray:
        """Batched :meth:`exploration_bonus` over ``(n, d)`` gradient rows.

        The diagonal regime reduces each row with the same pairwise
        summation as the per-sample path, so given identical gradient rows
        the bonuses are bit-identical; the ``"full"`` regime loops the
        (small-model-only) quadratic form per row.
        """
        gradients = np.atleast_2d(np.asarray(gradients, dtype=float))
        if self._d_inv is not None:
            values = np.array(
                [float(row @ self._d_inv @ row) for row in gradients]
            )
        else:
            values = (gradients**2 / self._d_diag).sum(axis=1)
        return np.sqrt(np.maximum(values, 0.0))

    def ucb_scores(self, context: np.ndarray) -> np.ndarray:
        """Upper confidence bound of every candidate capacity (Eq. 5).

        The fast kernel computes every arm's parameter gradient in one
        batched pass (:meth:`repro.nn.MLP.param_gradients`); the reference
        kernel is the original per-arm loop, kept as the differential
        oracle (:mod:`repro.perf`).
        """
        means = self.predicted_rewards(context)
        rows = self.arm_feature_rows(context)
        if perf.fast_kernels_enabled():
            bonuses = self.exploration_bonuses(self.network.param_gradients(rows))
        else:
            bonuses = np.array(
                [
                    self.exploration_bonus(self.network.param_gradient(row))
                    for row in rows
                ]
            )
        if obs_audit.current() is not None:
            self.last_score_parts = (means, bonuses)
        return means + self.config.alpha * bonuses

    # ------------------------------------------------------------------
    # Alg. 1: explore, update covariance, learn from feedback
    # ------------------------------------------------------------------
    def select_arm(self, context: np.ndarray) -> int:
        """Arm index with maximum UCB, with three practical safeguards.

        1. *Coverage*: while some arm has fewer than ``min_arm_pulls``
           global pulls, the least-pulled arm is chosen — without it the
           untrained network's near-constant scores make ``argmax``
           systematically return one arbitrary capacity and the reward
           model never sees the rest of the grid.
        2. *Epsilon exploration*: capacity choices gate which workloads can
           be observed, so a small exploration floor keeps data flowing.
        3. *Conservative indifference*: among arms whose score is within
           ``tie_tolerance`` of the maximum, the smallest capacity wins.
           A demand-limited broker's reward is flat in its own capacity, so
           its argmax is noise — yet granting it a huge capacity lets the
           matcher overload it the day demand shifts.  Brokers with a real
           learned peak are unaffected (their peak clears the tolerance).
        """
        return self._pick(self.ucb_scores, context)

    def _pick(self, score_fn, context: np.ndarray) -> int:
        return self._pick_explain(score_fn, context)[0]

    def _pick_explain(self, score_fn, context: np.ndarray) -> tuple[int, str]:
        """:meth:`_pick` plus the rule that fired (for decision audits).

        Returns ``(arm_index, rule)`` with rule one of ``"coverage"``
        (least-pulled arm under the global pull floor), ``"epsilon"``
        (exploration draw), or ``"ucb"`` (score argmax with the
        conservative tie-break).  Consumes exactly the same randomness as
        before the split — audited runs stay bit-identical.
        """
        self.last_score_parts = None
        if self._arm_pulls.min() < self.config.min_arm_pulls:
            return int(np.argmin(self._arm_pulls)), "coverage"
        if self.config.epsilon > 0 and self._rng.random() < self.config.epsilon:
            return int(self._rng.integers(self.capacities.size)), "epsilon"
        scores = score_fn(context)
        spread = float(scores.max() - scores.min())
        threshold = scores.max() - self.config.tie_tolerance * max(spread, 1e-12)
        qualified = np.nonzero(scores >= threshold)[0]
        # Smallest capacity *value* among the near-max arms — not the lowest
        # index, which is only the same thing when the grid is sorted
        # ascending (BanditConfig accepts arbitrary arm orderings).
        return int(qualified[np.argmin(self.capacities[qualified])]), "ucb"

    def _note_choice(
        self, broker_id: int | None, chosen: int, capacity: float, rule: str
    ) -> None:
        """Record a capacity choice into the active audit session (if any).

        The mean/bonus split is whatever the scoring path stashed in
        ``last_score_parts`` — absent for coverage/epsilon picks, which
        never scored.  Always clears the stash so a later un-scored pick
        cannot report a stale split.
        """
        parts, self.last_score_parts = self.last_score_parts, None
        session = obs_audit.current()
        if session is None or broker_id is None:
            return
        mean = bonus = None
        if parts is not None:
            means, bonuses = parts
            mean, bonus = float(means[chosen]), float(bonuses[chosen])
        session.note_capacity(broker_id, capacity, rule, mean=mean, bonus=bonus)

    def estimate(self, context: np.ndarray, broker_id: int | None = None) -> float:
        """Choose the capacity with maximum UCB; update ``D`` (line 12)."""
        chosen, rule = self._pick_explain(self.ucb_scores, context)
        capacity = float(self.capacities[chosen])
        self._note_choice(broker_id, chosen, capacity, rule)
        self._arm_pulls[chosen] += 1
        gradient = self.network.param_gradient(self._features(context, capacity))
        self._update_covariance(gradient)
        return capacity

    def _update_covariance(self, gradient: np.ndarray) -> None:
        """``D <- D + g g^T`` (diagonal: ``D <- D + g*g``)."""
        if self._d_inv is not None:
            d_inv_g = self._d_inv @ gradient
            denom = 1.0 + float(gradient @ d_inv_g)
            self._d_inv -= np.outer(d_inv_g, d_inv_g) / denom
        else:
            self._d_diag += gradient**2

    def update(
        self,
        context: np.ndarray,
        workload: float,
        reward: float,
        broker_id: int | None = None,
        capacity: float | None = None,
    ) -> None:
        """Buffer the trial; train when the buffer reaches batchSize.

        The stored arm input is the chosen capacity when ``train_on`` is
        ``"capacity"`` and a capacity was supplied (Alg. 1 line 16),
        otherwise the realized workload (Eq. 6 variant).  Both paths bucket
        by *rounding*: truncating the workload path would split what is one
        arm bucket (e.g. workloads 4.9 and 5.0) across two
        :meth:`_stratified_sample` strata.
        """
        if self.config.train_on == "capacity" and capacity is not None:
            arm_input = int(round(capacity))
        else:
            arm_input = int(round(workload))
        self._buffer.append(
            TrialTriple(np.asarray(context, dtype=float), arm_input, float(reward))
        )
        self.num_updates += 1
        obs.add("bandit.updates")
        if len(self._buffer) >= self.config.batch_size:
            self._train_on_buffer()

    def _train_on_buffer(self) -> None:
        """Minimize the regularized loss of Eq. 6 over buffered history.

        The fresh buffer is folded into a capped replay of past trials and
        the network trains on a random sample of that history — retraining
        only on the 16 newest samples would forget everything earlier.
        """
        steps_before = self.num_train_steps
        with obs.span("bandit.train"):
            self._train_on_buffer_inner()
        obs.add("bandit.train_steps", self.num_train_steps - steps_before)

    def _train_on_buffer_inner(self) -> None:
        self._replay.extend(self._buffer)
        self._buffer.clear()
        if len(self._replay) > self.config.replay_size:
            del self._replay[: len(self._replay) - self.config.replay_size]

        picked = self._stratified_sample()
        sample_size = picked.size
        rows = np.stack(
            [
                self._features(self._replay[i].context, float(self._replay[i].workload))
                for i in picked
            ]
        )
        targets = np.array([self._replay[i].reward for i in picked])
        batch = self.config.minibatch
        for _ in range(self.config.train_epochs):
            order = self._rng.permutation(sample_size)
            for start in range(0, sample_size, batch):
                chunk = order[start : start + batch]
                self.network.train_step(
                    rows[chunk], targets[chunk], self.optimizer, lam=self.config.lam
                )
                self.num_train_steps += 1

    def _stratified_sample(self) -> np.ndarray:
        """Replay indices balanced across arm values.

        The selection policy concentrates pulls on whatever region it
        currently prefers, so the raw replay is heavily imbalanced (one arm
        can hold >80% of the samples) and a uniform sample would fit that
        arm's mean everywhere.  Sampling an (approximately) equal number of
        rows per distinct arm value keeps the whole reward curve in view.
        """
        arms = np.array([triple.workload for triple in self._replay])
        unique = np.unique(arms)
        per_arm = max(1, self.config.replay_sample // unique.size)
        chunks = []
        for arm in unique:
            indices = np.nonzero(arms == arm)[0]
            if indices.size > per_arm:
                indices = self._rng.choice(indices, size=per_arm, replace=False)
            chunks.append(indices)
        return np.concatenate(chunks)

    def flush(self) -> None:
        """Force-train on a partially filled buffer (end-of-run cleanup)."""
        if self._buffer:
            self._train_on_buffer()

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    #: Snapshot kind; subclasses with identical state override it so a
    #: snapshot can never be restored into a different policy by accident.
    STATE_KIND = "bandits.nnucb"

    def snapshot(self) -> dict:
        """Deep snapshot: model, optimizer, covariance, history, RNG."""
        return versioned(
            self.STATE_KIND,
            {
                "network": self.network.snapshot(),
                "optimizer": self.optimizer.snapshot(),
                "rng": rng_state(self._rng),
                "arm_pulls": self._arm_pulls.copy(),
                "d_inv": None if self._d_inv is None else self._d_inv.copy(),
                "d_diag": None if self._d_diag is None else self._d_diag.copy(),
                "buffer": triples_to_state(self._buffer),
                "replay": triples_to_state(self._replay),
                "num_updates": int(self.num_updates),
                "num_train_steps": int(self.num_train_steps),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot`; the RNG is restored *in place*.

        In-place RNG restoration preserves stream sharing: the algorithm
        registry hands one generator to both the bandit and the assigner,
        and a resumed run must interleave their draws exactly as the
        uninterrupted run would.
        """
        payload = expect(state, self.STATE_KIND)
        arm_pulls = np.asarray(payload["arm_pulls"], dtype=int)
        if arm_pulls.shape != self._arm_pulls.shape:
            raise StateError(
                f"bandit snapshot has {arm_pulls.size} arms, "
                f"this bandit has {self._arm_pulls.size}"
            )
        self.network.restore(payload["network"])
        self.optimizer.restore(payload["optimizer"])
        set_rng_state(self._rng, payload["rng"])
        self._arm_pulls = arm_pulls.copy()
        d_inv, d_diag = payload["d_inv"], payload["d_diag"]
        if (d_inv is None) != (self._d_inv is None):
            raise StateError(
                "bandit snapshot covariance regime does not match the config "
                f"({'full' if d_inv is not None else 'diagonal'} vs "
                f"{self.config.covariance!r})"
            )
        self._d_inv = None if d_inv is None else np.array(d_inv, dtype=float)
        self._d_diag = None if d_diag is None else np.array(d_diag, dtype=float)
        self._buffer = triples_from_state(payload["buffer"])
        self._replay = triples_from_state(payload["replay"])
        self.num_updates = int(payload["num_updates"])
        self.num_train_steps = int(payload["num_train_steps"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def theorem1_parameters(self) -> tuple[int, int, float]:
        """``(L, |C|, xi)`` feeding the Theorem 1 regret bound."""
        return self.network.depth, int(self.capacities.size), self.network.max_singular_value()
