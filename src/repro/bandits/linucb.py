"""Standard (linear) UCB capacity estimator — Eq. 3 of the paper.

LinUCB assumes the expected reward is linear in the joint feature
``z = [x; c]``:

    UCB_{x,c} = theta . z + alpha * sqrt(z^T A^{-1} z)

with ``A = lambda I + sum z z^T`` the regularized design matrix and
``theta = A^{-1} b`` the ridge estimate.  The paper uses it as the
motivation for the NN-enhanced variant: the linear model cannot capture
the non-linear sign-up-rate-vs-workload relation of Sec. II-A, and the
LinUCB-vs-NNUCB ablation bench quantifies exactly that gap.
"""

from __future__ import annotations

import numpy as np

from repro.bandits.base import CapacityEstimator
from repro.state.protocol import StateError, expect, versioned


class LinUCBBandit(CapacityEstimator):
    """Linear UCB over candidate capacities.

    Args:
        context_dim: dimension of the working-status context ``x``.
        candidate_capacities: the arm set ``C``.
        alpha: exploration coefficient.
        lam: ridge regularization (prior ``A = lam I``).
    """

    def __init__(
        self,
        context_dim: int,
        candidate_capacities: np.ndarray,
        alpha: float = 0.5,
        lam: float = 1.0,
    ) -> None:
        if context_dim <= 0:
            raise ValueError(f"context_dim must be positive, got {context_dim}")
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        self.capacities = np.asarray(candidate_capacities, dtype=float)
        if self.capacities.size == 0:
            raise ValueError("candidate capacity set must be non-empty")
        self.alpha = alpha
        self.dim = context_dim + 1
        self._cap_norm = float(self.capacities.max())
        self._a_inv = np.eye(self.dim) / lam
        self._b = np.zeros(self.dim)
        self._theta = np.zeros(self.dim)
        self.num_updates = 0

    def _features(self, context: np.ndarray, capacity: float) -> np.ndarray:
        return np.concatenate([np.asarray(context, dtype=float), [capacity / self._cap_norm]])

    def ucb_scores(self, context: np.ndarray) -> np.ndarray:
        """UCB value of every candidate capacity under this context."""
        rows = np.stack([self._features(context, c) for c in self.capacities])
        means = rows @ self._theta
        # sqrt(z^T A^-1 z) per row, vectorized.
        bonus = np.sqrt(np.maximum(np.einsum("ij,jk,ik->i", rows, self._a_inv, rows), 0.0))
        return means + self.alpha * bonus

    def estimate(self, context: np.ndarray, broker_id: int | None = None) -> float:
        """Choose the capacity with the maximum linear UCB score."""
        scores = self.ucb_scores(context)
        return float(self.capacities[int(np.argmax(scores))])

    def update(
        self,
        context: np.ndarray,
        workload: float,
        reward: float,
        broker_id: int | None = None,
        capacity: float | None = None,
    ) -> None:
        """Rank-one ridge update with the observed trial triple.

        Trains on the chosen capacity when provided (Alg. 1 line 16
        convention), otherwise on the realized workload.
        """
        arm_input = float(workload) if capacity is None else float(capacity)
        z = self._features(context, arm_input)
        # Sherman-Morrison update of A^{-1} after A += z z^T.
        a_inv_z = self._a_inv @ z
        denom = 1.0 + float(z @ a_inv_z)
        self._a_inv -= np.outer(a_inv_z, a_inv_z) / denom
        self._b += reward * z
        self._theta = self._a_inv @ self._b
        self.num_updates += 1

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of the ridge statistics ``(A^{-1}, b, theta)``."""
        return versioned(
            "bandits.linucb",
            {
                "a_inv": self._a_inv.copy(),
                "b": self._b.copy(),
                "theta": self._theta.copy(),
                "num_updates": int(self.num_updates),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` into this bandit."""
        payload = expect(state, "bandits.linucb")
        a_inv = np.array(payload["a_inv"], dtype=float)
        if a_inv.shape != (self.dim, self.dim):
            raise StateError(
                f"LinUCB snapshot dimension {a_inv.shape} does not match "
                f"this bandit's ({self.dim}, {self.dim})"
            )
        self._a_inv = a_inv
        self._b = np.array(payload["b"], dtype=float)
        self._theta = np.array(payload["theta"], dtype=float)
        self.num_updates = int(payload["num_updates"])
