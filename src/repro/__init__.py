"""Reproduction of "Towards Capacity-Aware Broker Matching: From
Recommendation to Assignment" (Wei et al., ICDE 2023).

The package implements LACB — capacity estimation with NN-enhanced UCB
contextual bandits (personalized by layer transfer) plus Value Function
Guided Assignment with Candidate Broker Selection — together with every
substrate the paper's evaluation needs: a real-estate platform simulator,
a from-scratch Hungarian matcher, gradient-boosted utility learning, the
full baseline roster and the experiment harness regenerating each figure.

Quickstart::

    from repro import SyntheticConfig, generate_city, make_matcher, run_algorithm

    platform = generate_city(SyntheticConfig(num_brokers=200, num_requests=8000,
                                             num_days=14, seed=1))
    lacb = make_matcher("LACB-Opt", platform, seed=7)
    result = run_algorithm(platform, lacb)
    print(result.total_realized_utility)
"""

from repro.algorithms import (
    ALGORITHM_NAMES,
    BatchKMMatcher,
    ConstrainedTopKRecommender,
    LACBMatcher,
    Matcher,
    NeuralUCBAssignment,
    RandomizedRecommender,
    TopKRecommender,
    make_matcher,
)
from repro.bandits import (
    LinUCBBandit,
    NNUCBBandit,
    PersonalizedCapacityEstimator,
    RegretTracker,
    theorem1_bound,
)
from repro.core import (
    AssignmentConfig,
    BanditConfig,
    CapacityAwareValueFunction,
    LACBConfig,
    ValueFunctionGuidedAssigner,
    candidate_broker_selection,
    select_candidate_brokers,
)
from repro.engine import (
    AssignmentLogger,
    DayLoopEngine,
    DecisionTimer,
    MatcherSpec,
    MetricsCollector,
    PlatformSpec,
    ProgressReporter,
    RunHook,
    RunSpec,
    run_many,
)
from repro.experiments import (
    RunResult,
    compare_algorithms,
    evaluate_city,
    run_algorithm,
    sweep,
)
from repro.matching import greedy_assignment, hungarian, solve_assignment
from repro.simulation import (
    REAL_CITY_SPECS,
    RealEstatePlatform,
    SyntheticConfig,
    generate_city,
    real_like_city,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_NAMES",
    "AssignmentConfig",
    "AssignmentLogger",
    "BanditConfig",
    "BatchKMMatcher",
    "CapacityAwareValueFunction",
    "ConstrainedTopKRecommender",
    "DayLoopEngine",
    "DecisionTimer",
    "LACBConfig",
    "LACBMatcher",
    "LinUCBBandit",
    "Matcher",
    "MatcherSpec",
    "MetricsCollector",
    "NNUCBBandit",
    "NeuralUCBAssignment",
    "PersonalizedCapacityEstimator",
    "PlatformSpec",
    "ProgressReporter",
    "REAL_CITY_SPECS",
    "RandomizedRecommender",
    "RealEstatePlatform",
    "RegretTracker",
    "RunHook",
    "RunResult",
    "RunSpec",
    "SyntheticConfig",
    "TopKRecommender",
    "ValueFunctionGuidedAssigner",
    "candidate_broker_selection",
    "compare_algorithms",
    "evaluate_city",
    "generate_city",
    "greedy_assignment",
    "hungarian",
    "make_matcher",
    "real_like_city",
    "run_algorithm",
    "run_many",
    "select_candidate_brokers",
    "solve_assignment",
    "sweep",
    "theorem1_bound",
    "__version__",
]
