"""Bertsekas auction algorithm for maximum-weight bipartite matching.

An independent third solver (besides the Hungarian algorithm and the
min-cost-flow reduction) with a very different algorithmic character:
rows *bid* for their best column, prices rise by the bid increment plus
``epsilon``, and epsilon-scaling drives the assignment toward optimality
(the final matching is within ``n * epsilon_final`` of the optimum).

Scope: non-negative weights (the paper's utilities are positive).
Price retention across scaling rounds — what makes the refinement cheap —
is only sound when every column ends up matched, i.e. on *square*
instances; an unmatched column would keep a stale inflated price from a
coarse round and never be corrected downward.  Rectangular inputs are
therefore squared up first: the column side is pruned to the union of
each row's top-``n_rows`` candidates (lossless by Theorem 2 of the
paper), and zero-weight dummy rows absorb the remaining columns.
Zero-weight matches are dropped from the report (they add nothing to the
objective), so against :func:`repro.matching.hungarian.solve_assignment`
— which *does* report genuine zero-weight pairs — agreement is on the
total weight, not on the literal pair sets.

Used as an alternative per-batch backend and as another cross-check
oracle in the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult


def auction_assignment(
    weights: np.ndarray,
    scaling_factor: float = 4.0,
    tolerance: float = 1e-9,
) -> MatchResult:
    """Maximum-weight matching by epsilon-scaled forward auction.

    Args:
        weights: ``(n_rows, n_cols)`` non-negative edge weights.
        scaling_factor: epsilon divisor per scaling round (> 1).
        tolerance: relative optimality tolerance; the final epsilon is
            ``tolerance * spread / n`` so the total value is within
            ``tolerance * spread`` of the optimum.

    Returns:
        A :class:`MatchResult`; zero-weight pairs are omitted.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weights.shape}")
    if weights.size and weights.min() < 0:
        raise ValueError("auction_assignment expects non-negative weights")
    if scaling_factor <= 1.0:
        raise ValueError(f"scaling_factor must exceed 1, got {scaling_factor}")
    n_rows, n_cols = weights.shape
    if n_rows == 0 or n_cols == 0:
        return MatchResult(pairs=[], total_weight=0.0)
    if n_rows > n_cols:
        flipped = auction_assignment(weights.T, scaling_factor, tolerance)
        pairs = sorted((col, row) for row, col in flipped.pairs)
        return MatchResult(pairs=pairs, total_weight=flipped.total_weight)
    if float(weights.max()) == 0.0:
        return MatchResult(pairs=[], total_weight=0.0)

    if n_rows < n_cols:
        return _rectangular(weights, scaling_factor, tolerance)
    col_of_row = _square_auction(weights, scaling_factor, tolerance)
    return _collect(weights, col_of_row)


def _rectangular(
    weights: np.ndarray, scaling_factor: float, tolerance: float
) -> MatchResult:
    """Square-up a wide instance: Theorem 2 column pruning + dummy rows."""
    from repro.core.selection import select_candidate_brokers

    n_rows = weights.shape[0]
    rng = np.random.default_rng(weights.shape[1])  # pivot seed; any works
    columns = select_candidate_brokers(weights, n_rows, rng)
    reduced = weights[:, columns]
    side = reduced.shape[1]
    square = np.zeros((side, side))
    square[:n_rows] = reduced
    col_of_row = _square_auction(square, scaling_factor, tolerance)[:n_rows]
    result = _collect(reduced, col_of_row)
    pairs = sorted((row, int(columns[col])) for row, col in result.pairs)
    return MatchResult(pairs=pairs, total_weight=result.total_weight)


def _collect(weights: np.ndarray, col_of_row: np.ndarray) -> MatchResult:
    pairs = []
    total = 0.0
    for row in range(weights.shape[0]):
        col = int(col_of_row[row])
        if weights[row, col] > 0.0:
            pairs.append((row, col))
            total += float(weights[row, col])
    pairs.sort()
    return MatchResult(pairs=pairs, total_weight=total)


def _square_auction(
    weights: np.ndarray, scaling_factor: float, tolerance: float
) -> np.ndarray:
    """Epsilon-scaled forward auction on a square instance."""
    n_rows, n_cols = weights.shape
    spread = float(weights.max())
    final_epsilon = max(tolerance * spread / n_rows, 1e-15)

    prices = np.zeros(n_cols)
    col_of_row = np.full(n_rows, -1, dtype=int)
    row_of_col = np.full(n_cols, -1, dtype=int)
    epsilon = spread / 2.0

    while True:
        # Scaling round: assignments reset, prices carry over (they stay
        # consistent with epsilon-complementary-slackness of the coarser
        # round, which is what makes the refinement cheap).
        col_of_row.fill(-1)
        row_of_col.fill(-1)
        unassigned = list(range(n_rows))
        while unassigned:
            row = unassigned.pop()
            values = weights[row] - prices
            best = int(np.argmax(values))
            best_value = float(values[best])
            if n_cols > 1:
                values[best] = -np.inf
                second_value = float(values.max())
            else:
                second_value = best_value
            prices[best] += best_value - second_value + epsilon
            previous = row_of_col[best]
            if previous >= 0:
                col_of_row[previous] = -1
                unassigned.append(previous)
            row_of_col[best] = row
            col_of_row[row] = best
        if epsilon <= final_epsilon:
            break
        epsilon = max(epsilon / scaling_factor, final_epsilon)

    return col_of_row
