"""Min-cost-flow assignment solver (independent cross-check).

Maximum-weight bipartite matching reduces to min-cost max-flow on a
source/sink network with unit capacities.  We implement successive shortest
paths with Johnson potentials (Bellman-Ford initialization, Dijkstra
thereafter) from scratch.  Tests use this solver to independently confirm
that the Hungarian implementation (`repro.matching.hungarian`) is optimal,
and that CBS pruning (Theorem 2) loses nothing.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.matching.bipartite import MatchResult


class _FlowNetwork:
    """Adjacency-list residual network with per-edge cost."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.head: list[list[int]] = [[] for _ in range(num_nodes)]
        self.to: list[int] = []
        self.capacity: list[int] = []
        self.cost: list[float] = []

    def add_edge(self, src: int, dst: int, capacity: int, cost: float) -> None:
        """Add a directed edge and its zero-capacity reverse twin."""
        self.head[src].append(len(self.to))
        self.to.append(dst)
        self.capacity.append(capacity)
        self.cost.append(cost)
        self.head[dst].append(len(self.to))
        self.to.append(src)
        self.capacity.append(0)
        self.cost.append(-cost)


def min_cost_flow_assignment(weights: np.ndarray) -> MatchResult:
    """Maximum-weight bipartite matching via min-cost flow.

    Unmatched vertices are allowed (each augmenting path is only taken while
    it improves the objective), matching the zero-weight dummy-padding
    semantics of :func:`repro.matching.hungarian.solve_assignment`.

    Args:
        weights: ``(n_rows, n_cols)`` non-negative edge weights.

    Returns:
        A :class:`MatchResult` with the optimal pairs and total weight.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {weights.shape}")
    if weights.size and weights.min() < 0:
        raise ValueError("min_cost_flow_assignment expects non-negative weights")
    n_rows, n_cols = weights.shape
    if n_rows == 0 or n_cols == 0:
        return MatchResult(pairs=[], total_weight=0.0)

    source = n_rows + n_cols
    sink = source + 1
    net = _FlowNetwork(n_rows + n_cols + 2)
    for row in range(n_rows):
        net.add_edge(source, row, 1, 0.0)
    for col in range(n_cols):
        net.add_edge(n_rows + col, sink, 1, 0.0)
    edge_of_pair: dict[int, tuple[int, int]] = {}
    for row in range(n_rows):
        for col in range(n_cols):
            if weights[row, col] > 0.0:
                edge_of_pair[len(net.to)] = (row, col)
                net.add_edge(row, n_rows + col, 1, -float(weights[row, col]))

    potential = _bellman_ford(net, source)
    total = 0.0
    while True:
        dist, parent_edge = _dijkstra(net, source, potential)
        if not np.isfinite(dist[sink]):
            break
        true_cost = dist[sink] + potential[sink] - potential[source]
        if true_cost >= 0.0:
            break  # further augmentation would lower total weight
        node = sink
        while node != source:
            edge = parent_edge[node]
            net.capacity[edge] -= 1
            net.capacity[edge ^ 1] += 1
            node = net.to[edge ^ 1]
        total -= true_cost
        finite = np.isfinite(dist)
        potential[finite] += dist[finite]

    pairs = [
        edge_of_pair[edge]
        for edge in edge_of_pair
        if net.capacity[edge] == 0  # saturated forward edge == matched pair
    ]
    pairs.sort()
    return MatchResult(pairs=pairs, total_weight=total)


def _bellman_ford(net: _FlowNetwork, source: int) -> np.ndarray:
    """Exact shortest distances with negative edges (initial potentials)."""
    dist = np.full(net.num_nodes, np.inf)
    dist[source] = 0.0
    for _ in range(net.num_nodes - 1):
        changed = False
        for node in range(net.num_nodes):
            if not np.isfinite(dist[node]):
                continue
            for edge in net.head[node]:
                if net.capacity[edge] > 0 and dist[node] + net.cost[edge] < dist[net.to[edge]]:
                    dist[net.to[edge]] = dist[node] + net.cost[edge]
                    changed = True
        if not changed:
            break
    dist[~np.isfinite(dist)] = 0.0
    return dist


def _dijkstra(
    net: _FlowNetwork,
    source: int,
    potential: np.ndarray,
) -> tuple[np.ndarray, list[int]]:
    """Shortest paths on reduced (non-negative) costs."""
    dist = np.full(net.num_nodes, np.inf)
    parent_edge = [-1] * net.num_nodes
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        node_dist, node = heapq.heappop(heap)
        if node_dist > dist[node]:
            continue
        for edge in net.head[node]:
            if net.capacity[edge] <= 0:
                continue
            neighbor = net.to[edge]
            reduced = net.cost[edge] + potential[node] - potential[neighbor]
            candidate = node_dist + reduced
            if candidate < dist[neighbor] - 1e-12:
                dist[neighbor] = candidate
                parent_edge[neighbor] = edge
                heapq.heappush(heap, (candidate, neighbor))
    return dist, parent_edge
