"""Greedy bipartite matcher.

Not part of LACB itself, but the standard sanity baseline in the online
task-assignment literature the paper builds on (Sec. VIII cites Tong et al.'s
experimental finding that greedy is competitive in practice).  Also used in
tests as a lower bound for the optimal Hungarian solution.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult


def greedy_assignment(weights: np.ndarray, min_weight: float = 0.0) -> MatchResult:
    """One-to-one matching by repeatedly taking the heaviest free edge.

    Args:
        weights: ``(n_rows, n_cols)`` edge weights.
        min_weight: edges with weight strictly below this are never taken
            (zero keeps parity with dummy-padding semantics, where staying
            unmatched has zero value).

    Returns:
        A :class:`MatchResult`; total weight is at least half the optimum
        (the classic 1/2-approximation guarantee of greedy matching).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {weights.shape}")
    n_rows, n_cols = weights.shape
    flat_order = np.argsort(weights, axis=None)[::-1]
    row_used = np.zeros(n_rows, dtype=bool)
    col_used = np.zeros(n_cols, dtype=bool)
    pairs: list[tuple[int, int]] = []
    total = 0.0
    for flat in flat_order:
        row, col = divmod(int(flat), n_cols)
        weight = weights[row, col]
        if weight < min_weight or weight <= 0.0:
            break
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = True
        col_used[col] = True
        pairs.append((row, col))
        total += float(weight)
        if len(pairs) == min(n_rows, n_cols):
            break
    return MatchResult(pairs=pairs, total_weight=total)
