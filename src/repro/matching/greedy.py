"""Greedy bipartite matcher.

Not part of LACB itself, but the standard sanity baseline in the online
task-assignment literature the paper builds on (Sec. VIII cites Tong et al.'s
experimental finding that greedy is competitive in practice).  Also used in
tests as a lower bound for the optimal Hungarian solution.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult


def greedy_assignment(weights: np.ndarray, min_weight: float = 0.0) -> MatchResult:
    """One-to-one matching by repeatedly taking the heaviest free edge.

    Args:
        weights: ``(n_rows, n_cols)`` edge weights.
        min_weight: edges with weight strictly below this are never taken.
            Must be non-negative: greedy only ever takes strictly positive
            edges (parity with dummy-padding semantics, where staying
            unmatched has zero value), so a negative floor cannot admit
            anything and is rejected rather than silently ignored.

    Returns:
        A :class:`MatchResult`; total weight is at least half the optimum
        (the classic 1/2-approximation guarantee of greedy matching).
        Equal-weight edges are taken in ascending (row, col) order — the
        same smallest-index tie convention the exact backends follow.

    Raises:
        ValueError: on a malformed matrix or a negative ``min_weight``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {weights.shape}")
    if min_weight < 0.0:
        raise ValueError(
            f"min_weight must be non-negative, got {min_weight}: greedy never "
            "takes non-positive edges, so a negative floor would be ignored"
        )
    n_rows, n_cols = weights.shape
    # Stable sort on the negated weights: descending by weight, ties by
    # ascending flat index — i.e. smallest (row, col) first.  Reversing an
    # ascending argsort would resolve ties to the *largest* flat index.
    flat_order = np.argsort(-weights.ravel(), kind="stable")
    row_used = np.zeros(n_rows, dtype=bool)
    col_used = np.zeros(n_cols, dtype=bool)
    pairs: list[tuple[int, int]] = []
    total = 0.0
    for flat in flat_order:
        row, col = divmod(int(flat), n_cols)
        weight = weights[row, col]
        if weight < min_weight or weight <= 0.0:
            break
        if row_used[row] or col_used[col]:
            continue
        row_used[row] = True
        col_used[col] = True
        pairs.append((row, col))
        total += float(weight)
        if len(pairs) == min(n_rows, n_cols):
            break
    return MatchResult(pairs=pairs, total_weight=total)
