"""Bipartite-graph helpers: match results and dummy-vertex padding."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MatchResult:
    """Outcome of one bipartite assignment.

    Attributes:
        pairs: list of ``(row, col)`` index pairs over the *original*
            (un-padded) matrix; dummy matches are never reported.
        total_weight: sum of the matched edge weights.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    total_weight: float = 0.0

    def __len__(self) -> int:
        return len(self.pairs)

    def row_to_col(self) -> dict[int, int]:
        """Mapping from matched row index to its column."""
        return dict(self.pairs)

    def col_to_row(self) -> dict[int, int]:
        """Mapping from matched column index to its row."""
        return {col: row for row, col in self.pairs}


def pad_to_square(weights: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Pad a rectangular weight matrix to a square one with dummy vertices.

    Sec. VI-B: "By adding |B| - |R| dummy vertices, we obtain a balanced
    [graph] with |B| vertices on both sides and can execute the classical
    KM algorithm."  Dummy edges carry weight ``fill`` (zero by default) so
    they never contribute to the objective.

    Args:
        weights: ``(n_rows, n_cols)`` weight matrix.
        fill: weight placed on dummy edges.

    Returns:
        A ``(n, n)`` matrix with ``n = max(n_rows, n_cols)``.  The input is
        returned as a copy when already square.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {weights.shape}")
    n_rows, n_cols = weights.shape
    size = max(n_rows, n_cols)
    padded = np.full((size, size), fill, dtype=float)
    padded[:n_rows, :n_cols] = weights
    return padded


def utility_submatrix(
    utilities: np.ndarray,
    row_ids: np.ndarray,
    col_ids: np.ndarray,
) -> np.ndarray:
    """Extract the ``(row_ids x col_ids)`` block of a utility matrix.

    Used when assignment runs on a pruned broker set (Alg. 3): the matcher
    works in local indices and callers translate back via the id arrays.
    """
    utilities = np.asarray(utilities, dtype=float)
    return utilities[np.ix_(np.asarray(row_ids, int), np.asarray(col_ids, int))]
