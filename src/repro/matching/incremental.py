"""Incremental Kuhn-Munkres: warm-started, delta-aware repeated solves.

The fig8-style hot path solves one assignment per batch, and consecutive
batches are *near-duplicates* of each other: the broker pool drifts
slowly, and the Eq. 15 value refinement perturbs only the rows whose
requests changed.  ROADMAP names "incremental matching: make repeated KM
solves cheap" as the next scaling step; this module is that step.

Why not classic dual reuse
--------------------------

The textbook warm start (Bertsekas price retention, as used *within* one
auction solve) carries the dual potentials ``(u, v)`` from solve to
solve.  On this repo's rectangular instances that is **unsound**: every
row owns a private zero-weight dummy column, and complementary slackness
requires each unmatched column to carry zero potential — a reused profile
cannot know which columns the new instance will leave unmatched
(:func:`repro.matching.hungarian.hungarian` documents the measured ~85%
suboptimality).  Worse, even a *value-correct* warm start may return a
different equally-optimal matching under ties, and this repo promises
bit-identical seeded runs in fast and reference kernel modes.

Trajectory resumption
---------------------

The sound warm start exploits a determinism property of the
shortest-augmenting-path scheme instead: the solver state after
inserting rows ``1..p`` is a pure function of *those rows'* cost data
(an insertion never reads a not-yet-inserted row — see
:func:`repro.matching.hungarian._km_insert_row`).  So the solver records
the ``(u, v, row_of_col)`` state after every row insertion, and a
re-solve

1. finds the longest row prefix of the oriented weight matrix that is
   value-identical to the previous solve (the duals' *re-validation*),
2. restores the recorded state at that prefix, and
3. replays the remaining insertions on the new cost data.

The replay performs the same arithmetic in the same order as a cold
solve of the new matrix, so the result is **bit-identical by
construction** — matching pairs, tie resolution and the accumulated
total all match the reference cold solve exactly.  When only the ``k``
trailing rows changed, the repair costs exactly ``k`` augmenting passes.
Two short-circuits sharpen this:

* **hit** — the matrix is value-identical to the previous one: the
  cached result is returned without touching the solver;
* **reconvergence fast-forward** — after the last changed row has been
  re-inserted, if the solver state equals the previous trajectory's
  state at the same index, the remaining (identical) insertions are
  skipped and the recorded tail is adopted.

Fallback to a cold solve (= resumption from row 0) happens whenever the
trajectory cannot be reused: first solve, shape or orientation change,
a changed column identity set, or a changed first row.  Correctness
never depends on the fallback decision — the prefix comparison is by
*value*, and a cold solve is just the degenerate ``p = 0`` resumption.

The solver is opt-in (``AssignmentConfig(incremental=True)``) and sits
behind the :mod:`repro.perf` dual-kernel switch: with
``REPRO_REFERENCE_KERNELS=1`` every consumer routes to the reference
cold solver, and seeded runs are bit-identical in either mode.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult
from repro.matching.hungarian import _km_insert_row
from repro.obs import telemetry as obs
from repro.state.protocol import StateError, expect, versioned

#: Snapshot envelope kind (see ``docs/state.md``).
STATE_KIND = "matching.incremental"


class IncrementalKMSolver:
    """Warm-started KM over a stream of related maximization instances.

    Drop-in for ``solve_assignment(weights, maximize=True,
    backend="repro", pad_square=False)``: every :meth:`solve` returns the
    bit-identical :class:`MatchResult` the reference cold solver would
    produce, but consecutive calls reuse the recorded solve trajectory
    wherever the weight matrix is unchanged.

    The recorded per-row states cost ``O(n_rows * (n_rows + n_cols))``
    floats — for the paper's batch shapes (tens of requests, hundreds of
    candidate brokers) well under a megabyte.

    Attributes:
        stats: monotone counters — ``hit`` / ``warm`` / ``cold`` solve
            modes, ``rows_reinserted`` / ``rows_skipped`` row accounting,
            and ``fast_forward`` reconvergence adoptions.
    """

    def __init__(self) -> None:
        self.stats = {
            "hit": 0,
            "warm": 0,
            "cold": 0,
            "rows_reinserted": 0,
            "rows_skipped": 0,
            "fast_forward": 0,
        }
        self._working: np.ndarray | None = None
        self._transposed = False
        self._column_ids: np.ndarray | None = None
        # _states[i] is the (u, v, row_of_col) state after inserting rows
        # 1..i of the oriented cost matrix; _states[0] is the initial
        # all-zeros state.  Arrays in the list are never mutated in place.
        self._states: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._result: MatchResult | None = None

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        weights: np.ndarray,
        maximize: bool = True,
        column_ids: np.ndarray | None = None,
    ) -> MatchResult:
        """Optimal assignment, warm-started from the previous call.

        Args:
            weights: ``(n_rows, n_cols)`` utility matrix.
            maximize: must be ``True`` — the dummy-padding convention this
                solver shares with :func:`solve_assignment` is a
                maximization construct.
            column_ids: optional identity labels for the columns (e.g. the
                available-broker ids behind a pruned utility matrix).
                Purely a fast-reject hint: a changed id set forces a cold
                solve without comparing values.  Correctness never depends
                on it — the solver is positional, and the value-level
                prefix comparison already catches every numeric change.

        Returns:
            The same :class:`MatchResult` (pairs, tie resolution and
            bitwise total) as the reference cold solver.
        """
        if not maximize:
            raise ValueError("IncrementalKMSolver only supports maximization")
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2:
            raise ValueError(f"expected a 2-D weight matrix, got shape {weights.shape}")
        n_rows, n_cols = weights.shape
        if n_rows == 0 or n_cols == 0:
            return MatchResult(pairs=[], total_weight=0.0)
        if not np.all(np.isfinite(weights)):
            raise ValueError("weight matrix must be finite")
        ids = None if column_ids is None else np.asarray(column_ids)

        # Mirror _solve_assignment's orientation exactly: rows are the
        # smaller side, and each row gains a private zero-weight dummy
        # column so staying unmatched is always feasible.
        transposed = n_rows > n_cols
        working = weights.T if transposed else weights

        prefix = self._reusable_prefix(working, transposed, ids)
        wr = working.shape[0]
        if prefix == wr:
            self._count("hit", rows_total=wr, rows_reinserted=0)
            assert self._result is not None
            return MatchResult(
                pairs=list(self._result.pairs),
                total_weight=self._result.total_weight,
            )
        result = self._resume(working, transposed, ids, prefix)
        self._count("warm" if prefix > 0 else "cold", wr, wr - prefix)
        return result

    def _reusable_prefix(
        self,
        working: np.ndarray,
        transposed: bool,
        ids: np.ndarray | None,
    ) -> int:
        """Longest recorded-trajectory prefix valid for the new instance.

        Returns ``0`` (cold solve) whenever no trajectory exists, the
        oriented shape or orientation changed, or the column identity
        hint changed; otherwise the number of leading oriented rows that
        are value-identical to the previous solve.
        """
        if self._working is None or self._result is None:
            return 0
        if transposed != self._transposed or working.shape != self._working.shape:
            return 0
        if (ids is None) != (self._column_ids is None):
            return 0
        if ids is not None and not np.array_equal(ids, self._column_ids):
            return 0
        row_equal = (working == self._working).all(axis=1)
        changed = np.nonzero(~row_equal)[0]
        if changed.size == 0:
            return working.shape[0]
        return int(changed[0])

    def _resume(
        self,
        working: np.ndarray,
        transposed: bool,
        ids: np.ndarray | None,
        prefix: int,
    ) -> MatchResult:
        """Replay row insertions from ``prefix``, recording the trajectory."""
        wr, wc = working.shape
        # Identical construction to _solve_assignment so the cost entries
        # (dummy block included) are bit-for-bit the reference solver's.
        padded = np.hstack([working, np.zeros((wr, wr))])
        cost = -padded

        old_states = self._states
        old_working = self._working
        if prefix > 0:
            # The shared prefix states stay valid: state i is a pure
            # function of rows 1..i, and those rows are value-identical.
            # Arrays are never mutated in place, so aliasing is safe.
            states = old_states[:prefix + 1]
        else:
            # Cold resume: a fresh all-zeros state sized for *this*
            # instance (the old trajectory may have a different shape).
            states = [
                (
                    np.zeros(wr + 1),
                    np.zeros(wr + wc + 1),
                    np.zeros(wr + wc + 1, dtype=int),
                )
            ]
        u, v, row_of_col = (array.copy() for array in states[-1])
        way = np.zeros(wr + wc + 1, dtype=int)

        # Past this row every oriented row is value-identical to the old
        # instance, so the trajectories *may* reconverge.
        fast_forward_from = wr + 1
        if old_working is not None and old_working.shape == working.shape:
            row_equal = (working == old_working).all(axis=1)
            changed = np.nonzero(~row_equal)[0]
            if changed.size:
                fast_forward_from = int(changed[-1]) + 1

        row = prefix + 1
        while row <= wr:
            _km_insert_row(cost, u, v, row_of_col, way, row)
            states.append((u.copy(), v.copy(), row_of_col.copy()))
            if row >= fast_forward_from and row < wr and len(old_states) > row:
                old_u, old_v, old_roc = old_states[row]
                if (
                    np.array_equal(u, old_u)
                    and np.array_equal(v, old_v)
                    and np.array_equal(row_of_col, old_roc)
                ):
                    # The remaining rows are identical and the state
                    # matches the recorded trajectory: the rest of the
                    # replay is forced, so adopt the recorded tail.
                    states.extend(old_states[row + 1:])
                    row_of_col = old_states[-1][2]
                    self.stats["fast_forward"] += 1
                    obs.add("matching.incremental.fast_forwards", 1)
                    break
            row += 1

        result = self._extract(working, transposed, row_of_col)
        self._working = working.copy()
        self._transposed = transposed
        self._column_ids = None if ids is None else ids.copy()
        self._states = states
        self._result = result
        return MatchResult(pairs=list(result.pairs), total_weight=result.total_weight)

    @staticmethod
    def _extract(
        working: np.ndarray, transposed: bool, row_of_col: np.ndarray
    ) -> MatchResult:
        """Pairs and total from a final solver state, as the cold path does.

        Same loop (and therefore the same float accumulation order) as
        ``_solve_assignment`` — the totals must agree bitwise, not just to
        round-off.
        """
        wr, wc = working.shape
        col_of_row = np.zeros(wr, dtype=int)
        matched = row_of_col[1:] > 0
        col_of_row[row_of_col[1:][matched] - 1] = np.nonzero(matched)[0]
        pairs = []
        total = 0.0
        for row in range(wr):
            col = int(col_of_row[row])
            if col < wc:
                pair = (col, row) if transposed else (row, col)
                pairs.append(pair)
                total += float(working[row, col])
        pairs.sort()
        return MatchResult(pairs=pairs, total_weight=total)

    def _count(self, mode: str, rows_total: int, rows_reinserted: int) -> None:
        self.stats[mode] += 1
        self.stats["rows_reinserted"] += rows_reinserted
        self.stats["rows_skipped"] += rows_total - rows_reinserted
        obs.add("matching.incremental.solves", 1, mode=mode)
        if rows_reinserted:
            obs.add("matching.incremental.rows_reinserted", rows_reinserted)

    def reset(self) -> None:
        """Drop the recorded trajectory (the next solve is cold)."""
        self._working = None
        self._transposed = False
        self._column_ids = None
        self._states = []
        self._result = None

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of the recorded trajectory and counters.

        The trajectory is genuine run state: dropping it on resume would
        keep *results* bit-identical (every solve falls back to cold) but
        would change solve timings and mode counters, so checkpoints
        carry it whole.
        """
        return versioned(
            STATE_KIND,
            {
                "working": None if self._working is None else self._working.copy(),
                "transposed": bool(self._transposed),
                "column_ids": (
                    None if self._column_ids is None else self._column_ids.copy()
                ),
                "states": [
                    (u.copy(), v.copy(), row_of_col.copy())
                    for u, v, row_of_col in self._states
                ],
                "pairs": None if self._result is None else list(self._result.pairs),
                "total_weight": (
                    None if self._result is None else float(self._result.total_weight)
                ),
                "stats": dict(self.stats),
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` (deep copies throughout)."""
        payload = expect(state, STATE_KIND)
        working = payload["working"]
        pairs = payload["pairs"]
        if (working is None) != (pairs is None):
            raise StateError(
                "incremental-KM snapshot is inconsistent: trajectory and "
                "result must be present or absent together"
            )
        self._working = None if working is None else np.array(working, dtype=float)
        self._transposed = bool(payload["transposed"])
        ids = payload["column_ids"]
        self._column_ids = None if ids is None else np.array(ids)
        self._states = [
            (
                np.array(u, dtype=float),
                np.array(v, dtype=float),
                np.array(row_of_col, dtype=int),
            )
            for u, v, row_of_col in payload["states"]
        ]
        self._result = (
            None
            if pairs is None
            else MatchResult(
                pairs=[(int(row), int(col)) for row, col in pairs],
                total_weight=float(payload["total_weight"]),
            )
        )
        self.stats = {key: int(value) for key, value in payload["stats"].items()}
