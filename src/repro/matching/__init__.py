"""Bipartite matching substrate.

The paper's assignment phase (Alg. 2 line 7) runs the classical Kuhn-Munkres
(KM) algorithm on a balanced bipartite graph; its optimization (Alg. 3)
shrinks that graph before solving.  This package provides

- :func:`~repro.matching.hungarian.solve_assignment` — an O(n^3)
  shortest-augmenting-path Hungarian solver written from scratch, with an
  optional SciPy backend for cross-validation and large instances,
- :mod:`~repro.matching.bipartite` — dummy-vertex padding for unbalanced
  graphs and matrix construction helpers,
- :mod:`~repro.matching.greedy` — the greedy matcher used as a sanity
  baseline,
- :mod:`~repro.matching.incremental` — a warm-started KM solver for
  streams of related instances (trajectory resumption; bit-identical to
  the cold solver),
- :mod:`~repro.matching.flow` — a successive-shortest-path min-cost-flow
  solver used in tests to independently verify matching optimality,
- :mod:`~repro.matching.validation` — structural checks on matchings.
"""

from repro.matching.auction import auction_assignment
from repro.matching.bipartite import MatchResult, pad_to_square
from repro.matching.flow import min_cost_flow_assignment
from repro.matching.greedy import greedy_assignment
from repro.matching.hungarian import hungarian, solve_assignment
from repro.matching.incremental import IncrementalKMSolver
from repro.matching.validation import assert_valid_matching, is_valid_matching

__all__ = [
    "MatchResult",
    "pad_to_square",
    "hungarian",
    "solve_assignment",
    "IncrementalKMSolver",
    "auction_assignment",
    "greedy_assignment",
    "min_cost_flow_assignment",
    "is_valid_matching",
    "assert_valid_matching",
]
