"""Kuhn-Munkres (Hungarian) assignment solver.

This is the workhorse of Alg. 2 line 7: ``M = KM(u', R, B+)``.  We implement
the O(n_rows^2 * n_cols) shortest-augmenting-path formulation with dual
potentials (Jonker-Volgenant style) from scratch on NumPy.  The solver works
directly on rectangular instances with ``n_rows <= n_cols`` — crucial for
the paper's setting, where a batch of tens of requests meets thousands of
brokers and padding to a square ``|B| x |B|`` matrix would waste almost all
of the cubic work.

A SciPy backend (``scipy.optimize.linear_sum_assignment``) is available both
as a cross-validation oracle in tests and as a faster engine for paper-scale
instances; both backends return identical-value solutions.
"""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult
from repro.obs import telemetry as obs

_BACKENDS = ("repro", "scipy", "auction")


def hungarian(cost: np.ndarray) -> np.ndarray:
    """Minimum-cost matching saturating the rows of a cost matrix.

    Args:
        cost: ``(n_rows, n_cols)`` matrix with ``n_rows <= n_cols``;
            ``cost[i, j]`` is the cost of assigning row ``i`` to column ``j``.

    Returns:
        ``col_of_row`` — an ``(n_rows,)`` integer array where row ``i`` is
        matched to column ``col_of_row[i]``.  Every row is matched; with
        ``n_rows == n_cols`` this is a perfect matching.

    Rows are inserted one at a time; each insertion grows an alternating
    tree of tight edges until a free column is reached, while dual
    potentials ``u`` (rows) and ``v`` (columns) keep reduced costs
    non-negative (the classical shortest-augmenting-path scheme).

    Note on warm starts: reusing column potentials across consecutive
    batches (the incremental-matching idea of Abeywickrama et al., cited
    by the paper) is *not* sound here — with slack columns, complementary
    slackness requires every unmatched column to carry zero potential, and
    a reused profile cannot know which columns the new instance will leave
    unmatched (measured: ~85% of warm-started rectangular solves came back
    suboptimal).  The sound alternative is trajectory resumption — replay
    the row-insertion sequence from the last row whose cost data changed —
    which :class:`repro.matching.incremental.IncrementalKMSolver` builds on
    top of the same :func:`_km_insert_row` primitive this solver uses.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"hungarian() expects a matrix, got shape {cost.shape}")
    n_rows, n_cols = cost.shape
    if n_rows > n_cols:
        raise ValueError(
            f"hungarian() requires n_rows <= n_cols, got {cost.shape}; transpose first"
        )
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite")
    if n_rows == 0:
        return np.empty(0, dtype=int)

    # Column 0 is a sentinel holding the row currently being inserted;
    # real columns are 1-based.  row_of_col[j] == 0 means column j is free.
    u = np.zeros(n_rows + 1)
    v = np.zeros(n_cols + 1)
    row_of_col = np.zeros(n_cols + 1, dtype=int)
    way = np.zeros(n_cols + 1, dtype=int)

    for row in range(1, n_rows + 1):
        _km_insert_row(cost, u, v, row_of_col, way, row)

    col_of_row = np.zeros(n_rows, dtype=int)
    matched = row_of_col[1:] > 0
    col_of_row[row_of_col[1:][matched] - 1] = np.nonzero(matched)[0]
    return col_of_row


def _km_insert_row(
    cost: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    row_of_col: np.ndarray,
    way: np.ndarray,
    row: int,
) -> None:
    """Insert one row (1-based) into a partial KM solution, in place.

    This is the augmenting step shared by :func:`hungarian` and the
    incremental solver: grow an alternating tree of tight edges from
    ``row`` until a free column is reached, updating the duals so reduced
    costs stay non-negative, then augment along the tree.

    The state after inserting rows ``1..p`` is a pure function of the cost
    entries of those rows — nothing here reads a row that has not been
    inserted yet.  That determinism is what makes trajectory resumption in
    :mod:`repro.matching.incremental` exact: resuming from a recorded
    ``(u, v, row_of_col)`` replays the same arithmetic in the same order
    as a cold solve would.  ``way`` is write-before-read within a single
    insertion (the augmenting path only traverses columns whose pointer
    was set while growing this row's tree), so it carries no state across
    insertions and needs no recording.
    """
    n_cols = v.size - 1
    inf = np.inf
    row_of_col[0] = row
    j0 = 0
    min_reduced = np.full(n_cols, inf)  # over real columns 1..n_cols
    used = np.zeros(n_cols + 1, dtype=bool)
    used_rows: list[int] = []
    while True:
        used[j0] = True
        used_rows.append(row_of_col[j0])
        i0 = row_of_col[j0]
        reduced = cost[i0 - 1, :] - u[i0] - v[1:]
        unused = ~used[1:]
        improve = unused & (reduced < min_reduced)
        min_reduced[improve] = reduced[improve]
        way[1:][improve] = j0
        masked = np.where(unused, min_reduced, inf)
        j1 = int(np.argmin(masked)) + 1
        delta = masked[j1 - 1]
        # Update potentials: tight edges stay tight, one new edge
        # becomes tight; unreached columns get closer by delta.
        u[used_rows] += delta
        v[used] -= delta
        min_reduced[unused] -= delta
        j0 = j1
        if row_of_col[j0] == 0:
            break
    # Augment along the alternating path back to the sentinel column.
    while j0 != 0:
        j1 = way[j0]
        row_of_col[j0] = row_of_col[j1]
        j0 = j1


def solve_assignment(
    weights: np.ndarray,
    maximize: bool = True,
    backend: str = "repro",
    pad_square: bool = False,
) -> MatchResult:
    """Optimal assignment on a possibly rectangular weight matrix.

    When maximizing, every vertex of the smaller side is additionally given
    a private zero-weight dummy partner (the convention of Sec. VI-B: "a
    common practice is to add some dummy vertices to the smaller part"), so
    a vertex may stay unmatched at zero gain instead of being forced onto a
    negative-value edge.

    Args:
        weights: ``(n_rows, n_cols)`` matrix of edge weights/utilities.
        maximize: maximize total weight (the paper's objective, Eq. 1)
            instead of minimizing cost.
        backend: ``"repro"`` for the from-scratch Hungarian solver,
            ``"scipy"`` for ``scipy.optimize.linear_sum_assignment``, or
            ``"auction"`` for the epsilon-scaled auction algorithm
            (maximization with non-negative weights only).
        pad_square: pad the instance to a full ``max(n, m) x max(n, m)``
            square before solving, exactly as Sec. VI-B describes ("adding
            |B| - |R| dummy vertices") — the O(|B|^3) behaviour whose cost
            motivates CBS.  Off by default: the rectangular solver returns
            the identical matching in O(|R|^2 |B|), and the square mode
            exists to reproduce the paper's running-time comparisons.

    Returns:
        A :class:`MatchResult` with matched real pairs and the total weight.
        Dummy matches (a vertex paired with its private zero-weight partner)
        are omitted; a genuine zero-weight edge of the input matrix is a
        real pair and is reported when the solver selects it.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {_BACKENDS}")
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {weights.shape}")
    with obs.span("matching.solve", backend=backend):
        return _solve_assignment(weights, maximize, backend, pad_square)


def _solve_assignment(
    weights: np.ndarray, maximize: bool, backend: str, pad_square: bool
) -> MatchResult:
    """The actual solve behind :func:`solve_assignment` (validated inputs)."""
    if backend == "auction":
        if not maximize:
            raise ValueError("the auction backend only supports maximization")
        from repro.matching.auction import auction_assignment

        return auction_assignment(weights)
    n_rows, n_cols = weights.shape
    if n_rows == 0 or n_cols == 0:
        return MatchResult(pairs=[], total_weight=0.0)
    if not maximize and n_rows != n_cols:
        raise ValueError(
            "zero-weight dummy padding is only meaningful when maximizing; "
            "pass a square matrix for minimization"
        )

    # Orient so rows are the smaller side, then add one private dummy
    # column per row (weight 0) so staying unmatched is always feasible.
    transposed = n_rows > n_cols
    working = weights.T if transposed else weights
    wr, wc = working.shape
    if pad_square and maximize:
        side = max(wr, wc)
        padded = np.zeros((side, side + wr))
        padded[:wr, :wc] = working
        cost = -padded
    elif maximize:
        padded = np.hstack([working, np.zeros((wr, wr))])
        cost = -padded
    else:
        cost = working

    if backend == "scipy":
        from scipy.optimize import linear_sum_assignment

        rows, cols = linear_sum_assignment(cost)
        col_of_row = np.empty(wr, dtype=int)
        col_of_row[rows] = cols
    else:
        col_of_row = hungarian(cost)

    # Real columns occupy the block [0, wc) in both padded layouts; any
    # column >= wc is a dummy partner.  The block index — not the edge
    # weight — is what distinguishes a genuine zero-utility match from
    # staying unmatched.
    pairs = []
    total = 0.0
    for row in range(wr):
        col = int(col_of_row[row])
        if col < wc:
            pair = (col, row) if transposed else (row, col)
            pairs.append(pair)
            total += float(working[row, col])
    pairs.sort()
    return MatchResult(pairs=pairs, total_weight=total)
