"""Structural validation of matchings."""

from __future__ import annotations

import numpy as np

from repro.matching.bipartite import MatchResult


def is_valid_matching(result: MatchResult, n_rows: int, n_cols: int) -> bool:
    """Check that a match result is a one-to-one partial matching.

    Verifies that every index is in range, that no row or column appears
    twice, and that the reported total weight is finite.
    """
    rows_seen: set[int] = set()
    cols_seen: set[int] = set()
    for row, col in result.pairs:
        if not (0 <= row < n_rows and 0 <= col < n_cols):
            return False
        if row in rows_seen or col in cols_seen:
            return False
        rows_seen.add(row)
        cols_seen.add(col)
    return bool(np.isfinite(result.total_weight))


def assert_valid_matching(
    result: MatchResult,
    weights: np.ndarray,
    atol: float = 1e-9,
) -> None:
    """Raise ``AssertionError`` unless the matching is structurally sound.

    Additionally recomputes the total weight from the weight matrix and
    compares it with the reported value.
    """
    weights = np.asarray(weights, dtype=float)
    n_rows, n_cols = weights.shape
    if not is_valid_matching(result, n_rows, n_cols):
        raise AssertionError(f"structurally invalid matching: {result.pairs}")
    recomputed = sum(float(weights[row, col]) for row, col in result.pairs)
    if abs(recomputed - result.total_weight) > atol:
        raise AssertionError(
            f"total weight mismatch: reported {result.total_weight}, "
            f"recomputed {recomputed}"
        )
