"""Parameter-update rules for the reward-model MLP.

Alg. 1 line 17 performs plain gradient descent ``theta <- theta - grad L``;
:class:`SGD` reproduces that (with a configurable learning rate), and
:class:`Adam` is provided as the practical default for faster convergence
of the bandit's reward model.  Both honour per-layer ``trainable`` flags so
the personalization step (Sec. V-D) can fine-tune only the last layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.state.protocol import expect, versioned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.nn.mlp import MLP


class Optimizer(ABC):
    """Base class: applies accumulated layer gradients to parameters."""

    @abstractmethod
    def step(self, model: "MLP") -> None:
        """Update ``model`` in place from its accumulated gradients."""


class SGD(Optimizer):
    """Vanilla gradient descent, optionally with momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def step(self, model: "MLP") -> None:
        """Apply one (momentum-)SGD update to every trainable layer."""
        for index, layer in enumerate(model.layers):
            if not layer.trainable:
                continue
            if self.momentum > 0.0:
                vel_w, vel_b = self._velocity.setdefault(
                    index, (np.zeros_like(layer.weight), np.zeros_like(layer.bias))
                )
                vel_w *= self.momentum
                vel_w += layer.grad_weight
                vel_b *= self.momentum
                vel_b += layer.grad_bias
                layer.weight -= self.learning_rate * vel_w
                layer.bias -= self.learning_rate * vel_b
            else:
                layer.weight -= self.learning_rate * layer.grad_weight
                layer.bias -= self.learning_rate * layer.grad_bias

    def snapshot(self) -> dict:
        """Deep snapshot of the per-layer momentum buffers."""
        return versioned(
            "nn.sgd",
            {
                "velocity": {
                    index: (vel_w.copy(), vel_b.copy())
                    for index, (vel_w, vel_b) in self._velocity.items()
                }
            },
        )

    def restore(self, state) -> None:
        """Reinstall momentum buffers from a :meth:`snapshot`."""
        payload = expect(state, "nn.sgd")
        self._velocity = {
            int(index): (np.array(vel_w, dtype=float), np.array(vel_b, dtype=float))
            for index, (vel_w, vel_b) in payload["velocity"].items()
        }


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) over the per-layer gradient buffers."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._moments: dict[int, list[np.ndarray]] = {}

    def step(self, model: "MLP") -> None:
        """Apply one bias-corrected Adam update to every trainable layer."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, layer in enumerate(model.layers):
            if not layer.trainable:
                continue
            state = self._moments.setdefault(
                index,
                [
                    np.zeros_like(layer.weight),
                    np.zeros_like(layer.weight),
                    np.zeros_like(layer.bias),
                    np.zeros_like(layer.bias),
                ],
            )
            m_w, v_w, m_b, v_b = state
            for moment, second, grad, param in (
                (m_w, v_w, layer.grad_weight, layer.weight),
                (m_b, v_b, layer.grad_bias, layer.bias),
            ):
                moment *= self.beta1
                moment += (1.0 - self.beta1) * grad
                second *= self.beta2
                second += (1.0 - self.beta2) * grad**2
                param -= (
                    self.learning_rate
                    * (moment / bias1)
                    / (np.sqrt(second / bias2) + self.eps)
                )

    def snapshot(self) -> dict:
        """Deep snapshot of the step count and per-layer moment estimates."""
        return versioned(
            "nn.adam",
            {
                "step_count": int(self._step_count),
                "moments": {
                    index: [moment.copy() for moment in moments]
                    for index, moments in self._moments.items()
                },
            },
        )

    def restore(self, state) -> None:
        """Reinstall the Adam moments from a :meth:`snapshot`."""
        payload = expect(state, "nn.adam")
        self._step_count = int(payload["step_count"])
        self._moments = {
            int(index): [np.array(moment, dtype=float) for moment in moments]
            for index, moments in payload["moments"].items()
        }
