"""Minimal neural-network substrate used by the NN-enhanced UCB bandit.

The paper (Sec. V-C) replaces LinUCB's linear reward model with an L-layer
MLP ``S_theta(x, c)`` and needs the *per-sample parameter gradient*
``g_theta(x, c) = grad_theta S_theta`` to build the UCB exploration bonus
(Eq. 5).  Off-the-shelf frameworks hide that gradient behind autograd
machinery; this package implements a small fully-connected network with
manual backprop that exposes

- batched forward / backward passes for supervised training (Eq. 6),
- the flattened parameter vector and the exact per-sample gradient,
- per-layer freezing, used by the personalization step (Sec. V-D) that
  fine-tunes only the last layer on broker-specific data.

Everything is plain NumPy; all randomness flows through an explicitly
passed :class:`numpy.random.Generator`.
"""

from repro.nn.init import gaussian_init
from repro.nn.layers import Dense
from repro.nn.losses import l2_penalty, mse_loss
from repro.nn.mlp import MLP
from repro.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "Dense",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "mse_loss",
    "l2_penalty",
    "gaussian_init",
]
