"""Dense (fully connected) layer with manual forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.nn.init import gaussian_init


class Dense:
    """A fully connected layer ``y = x @ W.T + b``.

    The layer caches its last input so that :meth:`backward` can compute
    parameter gradients without the caller re-supplying activations.  A
    layer may be *frozen* (``trainable = False``), in which case optimizers
    skip its parameters — this implements the layer-transfer personalization
    of Sec. V-D, where the first ``L - 1`` layers of the base reward model
    are copied and only the last layer is fine-tuned per broker.
    """

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator) -> None:
        self.weight = gaussian_init(fan_in, fan_out, rng)
        self.bias = np.zeros(fan_out)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.trainable = True
        self._last_input: np.ndarray | None = None

    @property
    def fan_in(self) -> int:
        """Number of input units."""
        return self.weight.shape[1]

    @property
    def fan_out(self) -> int:
        """Number of output units."""
        return self.weight.shape[0]

    @property
    def num_params(self) -> int:
        """Total parameter count (weights plus biases)."""
        return self.weight.size + self.bias.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map to a ``(batch, fan_in)`` input."""
        if x.ndim != 2 or x.shape[1] != self.fan_in:
            raise ValueError(
                f"expected input of shape (batch, {self.fan_in}), got {x.shape}"
            )
        self._last_input = x
        return x @ self.weight.T + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``(batch, fan_out)`` output gradients.

        Accumulates parameter gradients into ``grad_weight`` / ``grad_bias``
        and returns the gradient with respect to the layer input.
        """
        if self._last_input is None:
            raise RuntimeError("backward() called before forward()")
        self.grad_weight += grad_output.T @ self._last_input
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0

    def copy_from(self, other: "Dense") -> None:
        """Copy parameters from another layer of identical shape."""
        if other.weight.shape != self.weight.shape:
            raise ValueError(
                f"shape mismatch: {other.weight.shape} vs {self.weight.shape}"
            )
        self.weight[:] = other.weight
        self.bias[:] = other.bias
