"""Weight initialization helpers.

Alg. 1 of the paper initializes the bandit's network parameters "with Gauss
Distribution"; we follow the common scaled-Gaussian (He) variant so deeper
reward models keep unit-scale activations under ReLU.
"""

from __future__ import annotations

import numpy as np


def gaussian_init(
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    scale: float | None = None,
) -> np.ndarray:
    """Sample a ``(fan_out, fan_in)`` Gaussian weight matrix.

    Args:
        fan_in: number of input units of the layer.
        fan_out: number of output units of the layer.
        rng: source of randomness.
        scale: standard deviation of the weights.  When ``None`` the
            He-scaled value ``sqrt(2 / fan_in)`` is used, appropriate for
            the ReLU activations of Eq. 4.

    Returns:
        A freshly sampled weight matrix.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"layer dimensions must be positive, got ({fan_in}, {fan_out})")
    if scale is None:
        scale = float(np.sqrt(2.0 / fan_in))
    return rng.normal(0.0, scale, size=(fan_out, fan_in))
