"""Loss functions for reward-model training (Eq. 6 of the paper)."""

from __future__ import annotations

import numpy as np


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Sum-of-squares loss and its gradient with respect to predictions.

    The paper's Eq. 6 uses the *sum* (not mean) of squared errors over the
    observation buffer, so we keep that convention.

    Returns:
        ``(loss, grad)`` where ``grad`` has the shape of ``predictions``.
    """
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
    residual = predictions - targets
    loss = float(np.sum(residual**2))
    return loss, 2.0 * residual


def l2_penalty(param_vector: np.ndarray, lam: float) -> tuple[float, np.ndarray]:
    """Ridge penalty ``lam * ||theta||_2^2`` and its gradient.

    Args:
        param_vector: flattened network parameters.
        lam: the regularization strength (``lambda`` in Eq. 6).
    """
    if lam < 0:
        raise ValueError(f"lambda must be non-negative, got {lam}")
    loss = float(lam * np.sum(param_vector**2))
    return loss, 2.0 * lam * param_vector
