"""Multi-layer perceptron with explicit parameter-vector access.

Implements the reward mapping function of Eq. 4,

    S_theta(x, c) = W_L . relu( ... relu(W_1 [x; c]) )

with manual backpropagation.  Beyond ordinary supervised training, the
NN-enhanced UCB policy (Eq. 5) needs the flattened per-sample gradient
``g_theta(x, c)`` of the scalar output with respect to every parameter;
:meth:`MLP.param_gradient` provides it exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.layers import Dense
from repro.nn.losses import l2_penalty, mse_loss
from repro.state.protocol import StateError, expect, versioned


class MLP:
    """Fully connected network with ReLU hidden activations and linear output.

    Args:
        layer_sizes: ``[input, hidden..., output]`` unit counts.  The paper's
            default configuration is a 3-layer network (Sec. VII-A).
        rng: source of randomness for Gaussian initialization (Alg. 1 line 3).
    """

    def __init__(self, layer_sizes: Sequence[int], rng: np.random.Generator) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least an input and an output size")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.layers = [
            Dense(fan_in, fan_out, rng)
            for fan_in, fan_out in zip(self.layer_sizes, self.layer_sizes[1:])
        ]
        self._relu_masks: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Shape bookkeeping
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Dimension of the concatenated context-capacity input ``[x; c]``."""
        return self.layer_sizes[0]

    @property
    def output_dim(self) -> int:
        """Dimension of the network output (1 for a scalar reward model)."""
        return self.layer_sizes[-1]

    @property
    def depth(self) -> int:
        """Number of affine layers, the ``L`` of Eq. 4."""
        return len(self.layers)

    @property
    def num_params(self) -> int:
        """Total number of learnable parameters ``d``."""
        return sum(layer.num_params for layer in self.layers)

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a ``(batch, input_dim)`` batch through the network."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self._relu_masks = []
        out = x
        for layer in self.layers[:-1]:
            out = layer.forward(out)
            mask = out > 0.0
            self._relu_masks.append(mask)
            out = out * mask
        return self.layers[-1].forward(out)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass returning a flat vector when the output is scalar."""
        out = self.forward(x)
        return out[:, 0] if self.output_dim == 1 else out

    def hidden_features(self, x: np.ndarray) -> np.ndarray:
        """Activations entering the last layer (the shared representation).

        The personalization scheme of Sec. V-D freezes the first ``L - 1``
        layers; these activations are exactly the features on which each
        broker's private head is fine-tuned.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = x
        for layer in self.layers[:-1]:
            out = layer.forward(out)
            out = out * (out > 0.0)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate output gradients, accumulating parameter gradients.

        Must follow a :meth:`forward` call on the same batch.  Returns the
        gradient with respect to the network input.
        """
        grad = np.atleast_2d(np.asarray(grad_output, dtype=float))
        grad = self.layers[-1].backward(grad)
        for layer, mask in zip(reversed(self.layers[:-1]), reversed(self._relu_masks)):
            grad = layer.backward(grad * mask)
        return grad

    def zero_grad(self) -> None:
        """Clear accumulated gradients in every layer."""
        for layer in self.layers:
            layer.zero_grad()

    # ------------------------------------------------------------------
    # Flattened parameter access (needed by the UCB covariance matrix)
    # ------------------------------------------------------------------
    def param_vector(self) -> np.ndarray:
        """Concatenate all weights and biases into one flat vector ``theta``."""
        chunks = []
        for layer in self.layers:
            chunks.append(layer.weight.ravel())
            chunks.append(layer.bias.ravel())
        return np.concatenate(chunks)

    def set_param_vector(self, theta: np.ndarray) -> None:
        """Load parameters from a flat vector produced by :meth:`param_vector`."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.num_params,):
            raise ValueError(f"expected {self.num_params} parameters, got {theta.shape}")
        offset = 0
        for layer in self.layers:
            w_size = layer.weight.size
            layer.weight[:] = theta[offset : offset + w_size].reshape(layer.weight.shape)
            offset += w_size
            b_size = layer.bias.size
            layer.bias[:] = theta[offset : offset + b_size]
            offset += b_size

    def grad_vector(self) -> np.ndarray:
        """Concatenate accumulated gradients into a flat vector."""
        chunks = []
        for layer in self.layers:
            chunks.append(layer.grad_weight.ravel())
            chunks.append(layer.grad_bias.ravel())
        return np.concatenate(chunks)

    def param_gradient(self, x: np.ndarray) -> np.ndarray:
        """Exact per-sample gradient ``g_theta(x) = grad_theta S_theta(x)``.

        Used for the exploration bonus of Eq. 5.  The network must have a
        scalar output.  Accumulated training gradients are preserved.
        """
        if self.output_dim != 1:
            raise ValueError("param_gradient requires a scalar-output network")
        saved = [(layer.grad_weight.copy(), layer.grad_bias.copy()) for layer in self.layers]
        self.zero_grad()
        self.forward(np.atleast_2d(x))
        self.backward(np.ones((1, 1)))
        gradient = self.grad_vector()
        for layer, (grad_w, grad_b) in zip(self.layers, saved):
            layer.grad_weight[:] = grad_w
            layer.grad_bias[:] = grad_b
        return gradient

    def param_gradients(self, x: np.ndarray) -> np.ndarray:
        """Per-sample gradients for a whole batch in one pass.

        Returns the ``(batch, num_params)`` matrix whose row ``i`` is
        ``param_gradient(x[i])`` — each row laid out in :meth:`grad_vector`
        order — without the per-sample Python loop, the gradient
        save/restore, or any mutation of the layers' training caches.
        This is the fast kernel behind the batched UCB exploration bonus
        (Eq. 5); :meth:`param_gradient` remains the per-sample reference
        the differential suites compare it against (agreement is to
        floating-point round-off: batched GEMMs may associate reductions
        differently than their per-row counterparts).
        """
        if self.output_dim != 1:
            raise ValueError("param_gradients requires a scalar-output network")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected input of shape (batch, {self.input_dim}), got {x.shape}"
            )
        batch = x.shape[0]
        # Forward with local caches: the layers' `_last_input` / relu masks
        # belong to training and must stay untouched.
        activations = [x]
        masks: list[np.ndarray] = []
        out = x
        for layer in self.layers[:-1]:
            out = out @ layer.weight.T + layer.bias
            mask = out > 0.0
            masks.append(mask)
            out = out * mask
            activations.append(out)
        # Backward: per-sample parameter gradients are pure outer products
        # delta_i (x) a_i, batched with einsum; only the propagated signal
        # `grad` mixes layers (never samples).
        per_layer: list[tuple[np.ndarray, np.ndarray]] = []
        grad = np.ones((batch, 1))
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            grad_weight = np.einsum("no,nj->noj", grad, activations[index])
            per_layer.append((grad_weight.reshape(batch, -1), grad))
            if index > 0:
                grad = (grad @ layer.weight) * masks[index - 1]
        chunks: list[np.ndarray] = []
        for grad_weight, grad_bias in reversed(per_layer):
            chunks.append(grad_weight)
            chunks.append(grad_bias)
        return np.concatenate(chunks, axis=1)

    # ------------------------------------------------------------------
    # Training helpers
    # ------------------------------------------------------------------
    def train_step(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        optimizer: "Optimizer",
        lam: float = 0.0,
    ) -> float:
        """One gradient step on the regularized loss of Eq. 6.

        Args:
            inputs: ``(batch, input_dim)`` design matrix.
            targets: ``(batch,)`` observed rewards (sign-up rates).
            optimizer: parameter-update rule.
            lam: L2 regularization strength (``lambda``).

        Returns:
            The scalar loss value before the update.
        """
        targets = np.asarray(targets, dtype=float).reshape(-1)
        self.zero_grad()
        predictions = self.predict(inputs)
        loss, grad_pred = mse_loss(predictions, targets)
        self.backward(grad_pred.reshape(-1, 1))
        if lam > 0.0:
            reg_loss, reg_grad = l2_penalty(self.param_vector(), lam)
            loss += reg_loss
            self._add_grad_vector(reg_grad)
        optimizer.step(self)
        return loss

    def _add_grad_vector(self, grad: np.ndarray) -> None:
        """Accumulate a flat gradient vector into the per-layer buffers."""
        offset = 0
        for layer in self.layers:
            w_size = layer.weight.size
            layer.grad_weight += grad[offset : offset + w_size].reshape(layer.weight.shape)
            offset += w_size
            b_size = layer.bias.size
            layer.grad_bias += grad[offset : offset + b_size]
            offset += b_size

    # ------------------------------------------------------------------
    # Personalization support (Sec. V-D)
    # ------------------------------------------------------------------
    def clone(self) -> "MLP":
        """Deep-copy the network (parameters and freeze flags)."""
        twin = MLP(self.layer_sizes, np.random.default_rng(0))
        for src, dst in zip(self.layers, twin.layers):
            dst.copy_from(src)
            dst.trainable = src.trainable
        return twin

    def freeze_all_but_last(self) -> None:
        """Freeze the first ``L - 1`` layers, leaving the head fine-tunable.

        This is the layer-transfer step of Sec. V-D: the shared base reward
        model provides the representation, and only the last fully connected
        layer adapts to broker-specific observations.
        """
        for layer in self.layers[:-1]:
            layer.trainable = False
        self.layers[-1].trainable = True

    # ------------------------------------------------------------------
    # Durable state (repro.state contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deep snapshot of parameters and per-layer freeze flags.

        Gradient buffers and relu masks are transient training caches and
        are deliberately excluded: every consumer zeroes gradients before
        use, so they carry no information across a day boundary.
        """
        return versioned(
            "nn.mlp",
            {
                "layer_sizes": list(self.layer_sizes),
                "layers": [
                    {
                        "weight": layer.weight.copy(),
                        "bias": layer.bias.copy(),
                        "trainable": bool(layer.trainable),
                    }
                    for layer in self.layers
                ],
            },
        )

    def restore(self, state) -> None:
        """Reinstall a :meth:`snapshot` into this network, in place."""
        payload = expect(state, "nn.mlp")
        if tuple(int(s) for s in payload["layer_sizes"]) != self.layer_sizes:
            raise StateError(
                f"MLP snapshot is for layer sizes {payload['layer_sizes']}, "
                f"network has {list(self.layer_sizes)}"
            )
        for layer, entry in zip(self.layers, payload["layers"]):
            weight = np.asarray(entry["weight"], dtype=float)
            bias = np.asarray(entry["bias"], dtype=float)
            if weight.shape != layer.weight.shape or bias.shape != layer.bias.shape:
                raise StateError(
                    f"MLP snapshot layer shape {weight.shape} does not match "
                    f"the network's {layer.weight.shape}"
                )
            layer.weight[:] = weight
            layer.bias[:] = bias
            layer.trainable = bool(entry["trainable"])
        self._relu_masks = []

    def max_singular_value(self) -> float:
        """Largest singular value ``xi`` over all weight matrices.

        Feeds the Theorem 1 regret bound ``n |C| xi^L / pi^(L-1)``.
        """
        return max(float(np.linalg.norm(layer.weight, 2)) for layer in self.layers)
